// Package stats provides the summary statistics used to reduce the
// simulated cluster measurements to the quantities the paper reports:
// medians of daily series (Fig. 3a, Fig. 3b), percentile spreads, simple
// histograms, and human-readable byte formatting (the paper reports
// terabytes per day).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (mean of the two central elements for
// even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	lo, hi := s[n/2-1], s[n/2]
	// Midpoint written to avoid overflow when both halves are huge.
	return lo + (hi-lo)/2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice and clamps p into range.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	// Interpolation written to avoid overflow for huge magnitudes.
	return s[lo] + (s[hi]-s[lo])*frac
}

// Summary bundles the descriptive statistics of one series.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
	P10    float64
	P90    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
		P10:    Percentile(xs, 10),
		P90:    Percentile(xs, 90),
	}
}

// Histogram counts values into equal-width buckets spanning [lo, hi).
// Values outside the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram builds a histogram of xs with n equal-width buckets over
// [lo, hi). n must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: bucket count %d must be positive", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		h.Buckets[b]++
	}
	return h, nil
}

// Total returns the number of samples in the histogram.
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Byte size units used throughout the reproduction.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
	PB = 1 << 50
)

// FormatBytes renders a byte count the way the paper does ("180 TB",
// "256 MB"), choosing the largest unit that keeps the value >= 1.
func FormatBytes(n int64) string {
	f := float64(n)
	switch {
	case n < 0:
		return "-" + FormatBytes(-n)
	case f >= PB:
		return fmt.Sprintf("%.2f PB", f/PB)
	case f >= TB:
		return fmt.Sprintf("%.2f TB", f/TB)
	case f >= GB:
		return fmt.Sprintf("%.2f GB", f/GB)
	case f >= MB:
		return fmt.Sprintf("%.2f MB", f/MB)
	case f >= KB:
		return fmt.Sprintf("%.2f KB", f/KB)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// IntsToFloats converts an int series to float64 for the reducers.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Int64sToFloats converts an int64 series to float64 for the reducers.
func Int64sToFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
