package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almost(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	if !almost(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Sum(xs), 20) {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if !almost(Min(xs), 2) || !almost(Max(xs), 8) {
		t.Error("Min/Max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty slices must reduce to 0")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample StdDev must be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) {
		t.Error("P0 wrong")
	}
	if !almost(Percentile(xs, 100), 5) {
		t.Error("P100 wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Error("P50 wrong")
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Error("P25 wrong")
	}
	if !almost(Percentile(xs, -5), 1) || !almost(Percentile(xs, 200), 5) {
		t.Error("clamping wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("singleton percentile wrong")
	}
}

// boundedSamples maps arbitrary quick-generated floats into the domain
// this package actually reduces (counts and byte totals): finite values
// of moderate magnitude.
func boundedSamples(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		xs = append(xs, math.Mod(x, 1e12))
	}
	return xs
}

func TestPercentileMatchesMedianProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundedSamples(raw)
		return almost(Percentile(xs, 50), Median(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		xs := boundedSamples(raw)
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 9.99, -5, 100}
	h, err := NewHistogram(xs, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(xs) {
		t.Fatalf("Total = %d, want %d", h.Total(), len(xs))
	}
	// -5 clamps into bucket 0; 100 clamps into bucket 4.
	if h.Buckets[0] != 3 { // 0, 1, -5
		t.Fatalf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.99, 100
		t.Fatalf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	if _, err := NewHistogram(xs, 0, 10, 0); err == nil {
		t.Fatal("zero buckets must error")
	}
	if _, err := NewHistogram(xs, 10, 0, 5); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2 * KB, "2.00 KB"},
		{256 * MB, "256.00 MB"},
		{int64(1.5 * GB), "1.50 GB"},
		{180 * TB, "180.00 TB"},
		{10 * PB, "10.00 PB"},
		{-TB, "-1.00 TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	f := IntsToFloats([]int{1, 2, 3})
	if len(f) != 3 || f[2] != 3 {
		t.Fatal("IntsToFloats wrong")
	}
	g := Int64sToFloats([]int64{TB, 2 * TB})
	if len(g) != 2 || g[1] != float64(2*TB) {
		t.Fatal("Int64sToFloats wrong")
	}
}

func TestMedianAgainstSortProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundedSamples(raw)
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		med := Median(xs)
		// At least half the values are <= median and at least half >=.
		le, ge := 0, 0
		for _, x := range s {
			if x <= med+1e-12 {
				le++
			}
			if x >= med-1e-12 {
				ge++
			}
		}
		return le*2 >= len(s) && ge*2 >= len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
