// The persistence benchmark behind BENCH_persist.json: the extent
// store measured on the two axes an operator tunes it by. First,
// append throughput under each fsync policy — never (page cache),
// interval (bounded loss window), always (sync per append) — because
// the policy is the knob that trades datanode write latency against
// the bytes a crash can lose. Second, recovery-scan time as a function
// of store size, because the startup scan is what a "restart from
// disk" costs: the in-memory index is rebuilt by sequentially reading
// every segment header, and that time is the window in which a
// restarted datanode holds data it cannot yet serve.
//
// The gates are correctness, not speed: every append must land, every
// reopen must rebuild the full index from disk, and every recovered
// payload must still pass its record CRC. Throughput numbers are
// reported, not gated — they depend on the machine and filesystem
// under the run.
package serve

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/extent"
)

// PersistBenchConfig parameterises the persistence benchmark. The zero
// value runs a small default matrix.
type PersistBenchConfig struct {
	// Dir is the scratch root for segment directories (default: a
	// fresh temp dir, removed afterwards).
	Dir string
	// BlockBytes is the payload size per append (default 64 KiB — the
	// serving layer's default block payload bound).
	BlockBytes int64
	// AppendBlocks is how many blocks each fsync policy appends
	// (default 512).
	AppendBlocks int
	// ScanBlocks are the store sizes (in blocks) whose recovery scan
	// is timed (default 256, 1024, 4096).
	ScanBlocks []int
	// SegmentBytes seals segments at this size so the scan walks a
	// realistic multi-segment layout (default 8 MiB).
	SegmentBytes int64
	// Seed drives payload content.
	Seed int64
}

// withDefaults fills unset fields.
func (cfg PersistBenchConfig) withDefaults() PersistBenchConfig {
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64 << 10
	}
	if cfg.AppendBlocks == 0 {
		cfg.AppendBlocks = 512
	}
	if len(cfg.ScanBlocks) == 0 {
		cfg.ScanBlocks = []int{256, 1024, 4096}
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 8 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	return cfg
}

// PersistAppendRow is one fsync policy's append measurement.
type PersistAppendRow struct {
	// Policy is the fsync policy name (never, interval, always).
	Policy string `json:"policy"`
	// Blocks and Bytes are what the run appended.
	Blocks int   `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// DurationSecs is the append wall time; AppendsPerSec and
	// MBPerSec are the headline rates.
	DurationSecs  float64 `json:"duration_secs"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

// PersistScanRow is one store size's recovery-scan measurement.
type PersistScanRow struct {
	// Blocks is the store's live block count; DiskBytes its on-disk
	// footprint; Segments its segment-file count.
	Blocks    int   `json:"blocks"`
	DiskBytes int64 `json:"disk_bytes"`
	Segments  int   `json:"segments"`
	// ScanMillis is the reopen (index-rebuild) wall time;
	// ScanMBPerSec normalises it by the disk footprint.
	ScanMillis   float64 `json:"scan_ms"`
	ScanMBPerSec float64 `json:"scan_mb_per_sec"`
	// RecoveredBlocks is the index cardinality after the scan (must
	// equal Blocks); CorruptPayloads is VerifyAll's failure count over
	// the recovered store (must be 0).
	RecoveredBlocks int `json:"recovered_blocks"`
	CorruptPayloads int `json:"corrupt_payloads"`
}

// PersistBenchReport is the machine-readable BENCH_persist.json
// payload.
type PersistBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	BlockBytes   int64 `json:"block_bytes"`
	AppendBlocks int   `json:"append_blocks"`
	SegmentBytes int64 `json:"segment_bytes"`

	Appends []PersistAppendRow `json:"appends"`
	Scans   []PersistScanRow   `json:"scans"`
}

// runPersistAppend measures one fsync policy: a fresh store, one timed
// Put per block, Sync + Close included in the timed window (a policy's
// cost is not honest if its deferred syncs are left pending).
func runPersistAppend(cfg PersistBenchConfig, dir string, policy extent.FsyncPolicy) (PersistAppendRow, error) {
	row := PersistAppendRow{Policy: policy.String(), Blocks: cfg.AppendBlocks}
	st, err := extent.Open(extent.Options{
		Dir:          dir,
		Fsync:        policy,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return row, err
	}
	payload := fileContent(cfg.Seed, "persistbench-"+policy.String(), cfg.BlockBytes)
	start := time.Now()
	for i := 0; i < cfg.AppendBlocks; i++ {
		if err := st.Put(int64(i), payload); err != nil {
			st.Close()
			return row, fmt.Errorf("append %d under %s: %w", i, policy, err)
		}
	}
	if err := st.Sync(); err != nil {
		st.Close()
		return row, err
	}
	elapsed := time.Since(start)
	if err := st.Close(); err != nil {
		return row, err
	}
	row.Bytes = int64(cfg.AppendBlocks) * cfg.BlockBytes
	row.DurationSecs = elapsed.Seconds()
	if row.DurationSecs > 0 {
		row.AppendsPerSec = float64(row.Blocks) / row.DurationSecs
		row.MBPerSec = float64(row.Bytes) / (1 << 20) / row.DurationSecs
	}
	return row, nil
}

// runPersistScan measures one store size: build a store of n blocks
// (with a sprinkling of overwrites and tombstones so the scan must
// apply supersession, as a real recovery does), close it, then time
// the reopen that rebuilds the index from disk.
func runPersistScan(cfg PersistBenchConfig, dir string, n int) (PersistScanRow, error) {
	row := PersistScanRow{Blocks: n}
	opts := extent.Options{Dir: dir, SegmentBytes: cfg.SegmentBytes}
	st, err := extent.Open(opts)
	if err != nil {
		return row, err
	}
	payload := fileContent(cfg.Seed, "persistscan", cfg.BlockBytes)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < n; i++ {
		if err := st.Put(int64(i), payload); err != nil {
			st.Close()
			return row, err
		}
		// Every 16th block is overwritten once and every 32nd deleted
		// then re-put: recovery must chase latest-wins chains, not
		// just count records.
		if i%16 == 7 {
			victim := int64(rng.Intn(i + 1))
			if err := st.Put(victim, payload); err != nil {
				st.Close()
				return row, err
			}
		}
		if i%32 == 15 {
			victim := int64(rng.Intn(i + 1))
			if err := st.Delete(victim); err != nil {
				st.Close()
				return row, err
			}
			if err := st.Put(victim, payload); err != nil {
				st.Close()
				return row, err
			}
		}
	}
	stats := st.Stats()
	row.DiskBytes = stats.DiskBytes
	row.Segments = stats.Segments
	if err := st.Close(); err != nil {
		return row, err
	}

	start := time.Now()
	st, err = extent.Open(opts)
	if err != nil {
		return row, fmt.Errorf("recovery reopen of %d-block store: %w", n, err)
	}
	elapsed := time.Since(start)
	row.ScanMillis = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		row.ScanMBPerSec = float64(row.DiskBytes) / (1 << 20) / elapsed.Seconds()
	}
	row.RecoveredBlocks = st.Len()
	corrupt, err := st.VerifyAll()
	if err != nil {
		st.Close()
		return row, err
	}
	row.CorruptPayloads = len(corrupt)
	return row, st.Close()
}

// RunPersistBench measures append throughput under every fsync policy
// and recovery-scan time at every configured store size.
func RunPersistBench(cfg PersistBenchConfig) (*PersistBenchReport, error) {
	cfg = cfg.withDefaults()
	root := cfg.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "persistbench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	report := &PersistBenchReport{
		Benchmark:    "persistent-extent-store",
		Seed:         cfg.Seed,
		BlockBytes:   cfg.BlockBytes,
		AppendBlocks: cfg.AppendBlocks,
		SegmentBytes: cfg.SegmentBytes,
	}
	for _, policy := range []extent.FsyncPolicy{extent.FsyncNever, extent.FsyncInterval, extent.FsyncAlways} {
		dir := fmt.Sprintf("%s/append-%s", root, policy)
		row, err := runPersistAppend(cfg, dir, policy)
		if err != nil {
			return nil, fmt.Errorf("serve: persist bench: %w", err)
		}
		report.Appends = append(report.Appends, row)
	}
	for _, n := range cfg.ScanBlocks {
		dir := fmt.Sprintf("%s/scan-%d", root, n)
		row, err := runPersistScan(cfg, dir, n)
		if err != nil {
			return nil, fmt.Errorf("serve: persist bench: %w", err)
		}
		report.Scans = append(report.Scans, row)
	}
	return report, nil
}

// CheckRecovery is the acceptance gate: every policy appended its full
// block count, every recovery scan rebuilt exactly the live index, and
// every recovered payload still passes its record CRC.
func (r *PersistBenchReport) CheckRecovery() error {
	for _, row := range r.Appends {
		if row.Blocks != r.AppendBlocks {
			return fmt.Errorf("serve: persist bench: %s policy appended %d blocks, want %d",
				row.Policy, row.Blocks, r.AppendBlocks)
		}
	}
	for _, row := range r.Scans {
		if row.RecoveredBlocks != row.Blocks {
			return fmt.Errorf("serve: persist bench: recovery scan of %d-block store rebuilt %d index entries",
				row.Blocks, row.RecoveredBlocks)
		}
		if row.CorruptPayloads != 0 {
			return fmt.Errorf("serve: persist bench: %d recovered payloads failed CRC in %d-block store",
				row.CorruptPayloads, row.Blocks)
		}
	}
	return nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *PersistBenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the two measurements.
func (r *PersistBenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "append throughput (%d x %s blocks per policy)\n", r.AppendBlocks, byteCount(r.BlockBytes))
	fmt.Fprintf(&b, "%10s %12s %12s %12s\n", "fsync", "appends/sec", "MB/sec", "wall")
	for _, row := range r.Appends {
		fmt.Fprintf(&b, "%10s %12.0f %12.1f %11.1fms\n",
			row.Policy, row.AppendsPerSec, row.MBPerSec, row.DurationSecs*1e3)
	}
	fmt.Fprintf(&b, "\nrecovery scan (index rebuild on reopen)\n")
	fmt.Fprintf(&b, "%10s %10s %10s %12s %12s\n", "blocks", "disk", "segments", "scan", "MB/sec")
	for _, row := range r.Scans {
		fmt.Fprintf(&b, "%10d %10s %10d %10.1fms %12.0f\n",
			row.Blocks, byteCount(row.DiskBytes), row.Segments, row.ScanMillis, row.ScanMBPerSec)
	}
	return b.String()
}

// byteCount renders a byte count compactly.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
