// The metrics smoke check: boot a small instrumented system with the
// debug HTTP listeners on, push it through a write → raid → kill →
// degraded-read → autonomous-repair cycle, and scrape /metrics like an
// operator's Prometheus would — twice. The check asserts the contract
// the observability layer advertises: every required instrument name
// is present, the cycle's instruments moved, and counters are
// monotonic between scrapes. `make metrics-smoke` (and CI through
// benchsmoke) runs it per codec.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
)

// requiredInstruments are the name prefixes one namenode /metrics
// scrape of the exercised system must contain — one per instrumented
// tier (RPC plane, serve layer, repair control plane, metadata
// substrate, repair engine).
var requiredInstruments = []string{
	"rpc_requests_total",
	"rpc_request_seconds_bucket",
	"rpc_response_bytes_total",
	"serve_degraded_plans_total",
	"repair_polls_total",
	"repair_repairs_done_total",
	"repair_queue_depth",
	"hdfs_lock_wait_seconds",
	"hdfs_meta_ops",
	"engine_workers",
}

// scrapeMetrics fetches and parses one Prometheus text exposition into
// a name → value map (full name including labels; # lines skipped).
func scrapeMetrics(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /metrics answered %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("serve: unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("serve: metrics line %q: %w", line, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

// findPrefix returns whether any metric name starts with prefix.
func findPrefix(m map[string]float64, prefix string) bool {
	for name := range m {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// sumPrefix sums every metric whose name starts with prefix.
func sumPrefix(m map[string]float64, prefix string) float64 {
	total := 0.0
	for name, v := range m {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// RunMetricsSmoke drives the end-to-end telemetry check for one codec.
// It returns nil only when the scraped metrics tell the full story of
// the run: degraded reads planned, repairs polled and completed, every
// required instrument exposed, counters monotonic.
func RunMetricsSmoke(code ec.Code) error {
	mgrCfg := repairmgr.DefaultConfig()
	mgrCfg.SuspectAfter = 300 * time.Millisecond
	mgrCfg.GraceWindow = 0 // repair at the suspect deadline: the smoke wants traffic, not savings
	mgrCfg.PollInterval = 50 * time.Millisecond

	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	}, WithTelemetry(TelemetryConfig{HTTP: true}), WithRepairManager(mgrCfg))
	if err != nil {
		return err
	}
	defer sys.Close()
	if sys.MetricsAddr() == "" {
		return fmt.Errorf("serve: telemetry HTTP listener missing")
	}

	cl, err := Dial(sys.NameAddr(), code)
	if err != nil {
		return err
	}
	defer cl.Close()

	const files = 2
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("smoke-%d", i)
		data := fileContent(7, names[i], 4*4096)
		if err := cl.WriteFile(names[i], data); err != nil {
			return err
		}
		if err := cl.RaidFile(names[i]); err != nil {
			return err
		}
	}

	// Kill the holder of the first file's first data block, then read
	// through the loss: the reads take the degraded path until the
	// control plane detects the death and repairs the stripes.
	_, blocks, err := sys.Cluster().FileBlocks(names[0])
	if err != nil {
		return err
	}
	if len(blocks) == 0 || len(blocks[0].Locations) == 0 {
		return fmt.Errorf("serve: smoke working set has no locatable first block")
	}
	if err := sys.KillDataNode(blocks[0].Locations[0]); err != nil {
		return err
	}

	deadline := time.Now().Add(15 * time.Second)
	repaired := false
	for time.Now().Before(deadline) {
		for _, name := range names {
			if _, err := cl.ReadFile(name); err != nil {
				return fmt.Errorf("serve: read %s through the failure: %w", name, err)
			}
		}
		st, err := cl.RepairStatus()
		if err != nil {
			return err
		}
		if st.RepairsDone >= 1 {
			repaired = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !repaired {
		return fmt.Errorf("serve: autonomous repair did not complete within the smoke deadline")
	}
	if cl.Counters().DegradedBlocks == 0 {
		return fmt.Errorf("serve: smoke run produced no degraded reads")
	}

	first, err := scrapeMetrics(sys.MetricsAddr())
	if err != nil {
		return err
	}
	for _, want := range requiredInstruments {
		if !findPrefix(first, want) {
			return fmt.Errorf("serve: /metrics scrape missing instrument %s", want)
		}
	}
	for name, min := range map[string]float64{
		"serve_degraded_plans_total": 1,
		"repair_polls_total":         1,
		"repair_repairs_done_total":  1,
	} {
		if first[name] < min {
			return fmt.Errorf("serve: %s = %v, want >= %v", name, first[name], min)
		}
	}
	if sumPrefix(first, `rpc_requests_total{role="datanode"`) == 0 {
		return fmt.Errorf("serve: no datanode RPCs recorded on the shared registry")
	}

	// A surviving datanode's own listener serves the same registry.
	dnAddr := ""
	for m := 0; dnAddr == "" && m < sys.Cluster().Machines(); m++ {
		dnAddr = sys.DataNodeMetricsAddr(m)
	}
	if dnAddr == "" {
		return fmt.Errorf("serve: no datanode debug listener found")
	}
	if _, err := scrapeMetrics(dnAddr); err != nil {
		return fmt.Errorf("serve: datanode scrape: %w", err)
	}

	// More traffic, then the monotonicity check: between two scrapes no
	// counter (the _total names) may move backwards.
	for _, name := range names {
		if _, err := cl.ReadFile(name); err != nil {
			return err
		}
	}
	second, err := scrapeMetrics(sys.MetricsAddr())
	if err != nil {
		return err
	}
	for name, v1 := range first {
		if !strings.Contains(name, "_total") {
			continue // gauges may move either way
		}
		if v2, ok := second[name]; !ok || v2 < v1 {
			return fmt.Errorf("serve: counter %s went backwards: %v -> %v", name, v1, second[name])
		}
	}
	return nil
}
