package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/testutil/leakcheck"
)

// testCodecs returns the three codecs the paper compares, sized small
// so a localhost cluster stays quick.
func testCodecs(t *testing.T) []ec.Code {
	t.Helper()
	rsc, err := rs.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := lrc.New(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []ec.Code{rsc, pb, lc}
}

func startTestSystem(t *testing.T, code ec.Code) *System {
	t.Helper()
	// Registered before sys.Close so the leak verdict runs after it:
	// a handler or fixer goroutine that Close fails to reap fails the
	// test here instead of poisoning the next one.
	leakcheck.Cleanup(t)
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// TestWriteReadRoundTrip covers the healthy path: bytes written over
// the wire come back identical, replica reads spread across holders.
func TestWriteReadRoundTrip(t *testing.T) {
	for _, code := range testCodecs(t) {
		t.Run(code.Name(), func(t *testing.T) {
			sys := startTestSystem(t, code)
			cl, err := Dial(sys.NameAddr(), code)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(1))
			data := make([]byte, 3*4096+123) // 4 blocks, ragged tail
			rng.Read(data)
			if err := cl.WriteFile("f", data); err != nil {
				t.Fatal(err)
			}
			got, err := cl.ReadFile("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read returned %d bytes, mismatch with %d written", len(got), len(data))
			}
			c := cl.Counters()
			if c.Reads != 1 || c.Writes != 1 || c.BlocksRead != 4 || c.DegradedBlocks != 0 {
				t.Fatalf("unexpected counters %+v", c)
			}
		})
	}
}

// TestCodecMismatchRejected: the dial handshake enforces the client's
// codec matches the cluster's.
func TestCodecMismatchRejected(t *testing.T) {
	codes := testCodecs(t)
	sys := startTestSystem(t, codes[0])
	if _, err := Dial(sys.NameAddr(), codes[1]); err == nil {
		t.Fatal("dial with mismatched codec succeeded")
	}
}

// TestDegradedReadAfterKill is the serving layer's core claim, per
// codec: kill the datanode holding a data block — while reads are in
// flight — and every read still returns byte-identical data with zero
// errors, only degraded block reads.
func TestDegradedReadAfterKill(t *testing.T) {
	for _, code := range testCodecs(t) {
		t.Run(code.Name(), func(t *testing.T) {
			sys := startTestSystem(t, code)
			cl, err := Dial(sys.NameAddr(), code)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(2))
			data := make([]byte, 6*4096) // spans stripes for k=4
			rng.Read(data)
			if err := cl.WriteFile("f", data); err != nil {
				t.Fatal(err)
			}
			if err := cl.RaidFile("f"); err != nil {
				t.Fatal(err)
			}
			if got, err := cl.ReadFile("f"); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("healthy post-raid read broken: %v", err)
			}

			// Readers hammer the file while the kill lands mid-run. No
			// wall clocks: each completed read signals progress, the
			// kill lands once reads are demonstrably in flight, and the
			// run ends after enough post-kill reads completed — however
			// fast or slow the host is.
			_, blocks, err := sys.Cluster().FileBlocks("f")
			if err != nil {
				t.Fatal(err)
			}
			victim := blocks[0].Locations[0]
			var completed atomic.Int64
			progress := make(chan struct{}, 1)
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rcl, err := Dial(sys.NameAddr(), code)
					if err != nil {
						errs <- err
						return
					}
					defer rcl.Close()
					for {
						select {
						case <-stop:
							return
						default:
						}
						got, err := rcl.ReadFile("f")
						if err != nil {
							errs <- fmt.Errorf("reader %d: %w", w, err)
							return
						}
						if !bytes.Equal(got, data) {
							errs <- fmt.Errorf("reader %d: content mismatch", w)
							return
						}
						completed.Add(1)
						select {
						case progress <- struct{}{}:
						default:
						}
					}
				}(w)
			}
			// If every reader exits on error, the wait must fail fast
			// with the collected errors instead of hanging on progress
			// that will never come.
			readersDone := make(chan struct{})
			go func() { wg.Wait(); close(readersDone) }()
			waitProgress := func() bool {
				select {
				case <-progress:
					return true
				case <-readersDone:
					return false
				}
			}
			alive := waitProgress() // at least one whole-file read completed
			if alive {
				if err := sys.KillDataNode(victim); err != nil {
					t.Fatal(err)
				}
				for target := completed.Load() + 8; alive && completed.Load() < target; {
					alive = waitProgress() // post-kill reads complete degraded
				}
			}
			close(stop)
			<-readersDone
			close(errs)
			failed := false
			for err := range errs {
				failed = true
				t.Errorf("read error during kill: %v", err)
			}
			if !alive && !failed {
				t.Fatal("readers exited early without reporting errors")
			}

			// A fresh read after the kill must be byte-identical and
			// must have taken the degraded path for the lost block.
			got, err := cl.ReadFile("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("post-kill read is not byte-identical")
			}
			if c := cl.Counters(); c.DegradedBlocks == 0 {
				t.Fatalf("expected degraded block reads after kill, counters %+v", c)
			}
		})
	}
}

// TestFixerRestoresHealthyReads: after a wire-driven fixer pass, reads
// stop being degraded — the block was reconstructed onto a live
// machine and the namenode serves its new location.
func TestFixerRestoresHealthyReads(t *testing.T) {
	code := testCodecs(t)[1] // piggybacked-rs
	sys := startTestSystem(t, code)
	cl, err := Dial(sys.NameAddr(), code)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := bytes.Repeat([]byte("warehouse"), 2048)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	if err := cl.RaidFile("f"); err != nil {
		t.Fatal(err)
	}
	_, blocks, err := sys.Cluster().FileBlocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.KillDataNode(blocks[0].Locations[0]); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.RunBlockFixer()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairedStriped == 0 || rep.Unrecoverable != 0 {
		t.Fatalf("fixer report %+v", rep)
	}
	before := cl.Counters().DegradedBlocks
	got, err := cl.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-fix read is not byte-identical")
	}
	if after := cl.Counters().DegradedBlocks; after != before {
		t.Fatalf("post-fix read still degraded (%d -> %d)", before, after)
	}
}

// TestRestartDataNode: a restarted daemon comes back on a fresh port
// and clients rediscover it through the namenode.
func TestRestartDataNode(t *testing.T) {
	code := testCodecs(t)[0]
	sys := startTestSystem(t, code)
	cl, err := Dial(sys.NameAddr(), code)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	data := bytes.Repeat([]byte("x"), 4096)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	_, blocks, err := sys.Cluster().FileBlocks("f")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range blocks[0].Locations {
		if err := cl.FailMachine(m); err != nil {
			t.Fatal(err)
		}
	}
	// Replication 3, all holders dead, unstriped: the read must fail.
	if _, err := cl.ReadFile("f"); err == nil {
		t.Fatal("read of fully-failed unstriped file succeeded")
	}
	for _, m := range blocks[0].Locations {
		if err := cl.RestoreMachine(m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-restart read is not byte-identical")
	}
}

// TestFrameSizeGuards: hostile frame lengths are rejected, not
// allocated.
func TestFrameSizeGuards(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &request{Method: "x"}, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload length to something absurd.
	b := buf.Bytes()
	b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0xFF
	var req request
	if _, err := readFrame(bytes.NewReader(b), &req); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if !strings.Contains(fmt.Sprint(errFrameTooLarge), "size bound") {
		t.Fatal("unexpected sentinel text")
	}
}
