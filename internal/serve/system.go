// System wires a full serving cluster together on localhost: one
// hdfs metadata plane (a single Cluster, or a ShardedCluster when
// Config.Shards > 1) as the storage substrate, one datanode daemon per
// machine, and one namenode fronting the metadata — each on its own
// TCP port. It is also the failure injector: KillDataNode marks the
// machine dead at the namenode AND tears down its daemon with every
// open connection, so clients experience the same thing a real machine
// loss produces — connections cut mid-frame, then metadata that no
// longer lists the machine.
package serve

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/ec"
	"repro/internal/extent"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
	"repro/internal/telemetry"
)

// Option configures a System at Start.
type Option func(*sysOptions)

type sysOptions struct {
	mgrCfg         *repairmgr.Config
	hbInterval     time.Duration
	teleCfg        *TelemetryConfig
	dataDir        string
	fsync          extent.FsyncPolicy
	nodeCacheBytes int64
}

// WithRepairManager runs the autonomous repair control plane inside
// the namenode: every datanode daemon sends dn.heartbeat frames, the
// manager's failure detector tracks alive → suspect → dead, and
// detected losses repair themselves through the risk-prioritised,
// bandwidth-throttled queue — no manual fixer calls. The manager's
// clock must be real time (leave cfg.Clock nil) for a live system.
func WithRepairManager(cfg repairmgr.Config) Option {
	return func(o *sysOptions) { o.mgrCfg = &cfg }
}

// WithHeartbeatInterval overrides the datanode heartbeat period
// (default: a third of the manager's SuspectAfter).
func WithHeartbeatInterval(d time.Duration) Option {
	return func(o *sysOptions) { o.hbInterval = d }
}

// WithDataDir backs every datanode with a persistent extent store
// under dir (one dn-NNN subdirectory per machine) instead of the
// volatile in-memory store. With persistence, KillDataNode genuinely
// discards the machine's in-memory block index and RestartDataNode
// genuinely rebuilds it by scanning the machine's segment files — a
// restart within the repair manager's grace window therefore proves
// the bytes survived, rather than asserting it about a map that was
// never dropped.
func WithDataDir(dir string) Option {
	return func(o *sysOptions) { o.dataDir = dir }
}

// WithFsyncPolicy selects the extent store's durability mode (default
// FsyncInterval). Only meaningful together with WithDataDir.
func WithFsyncPolicy(p extent.FsyncPolicy) Option {
	return func(o *sysOptions) { o.fsync = p }
}

// WithDataNodeCache fronts every machine's block store with a sharded
// LRU read cache of n bytes (hdfs.Config.NodeCacheBytes): hot replica
// reads answer from memory instead of a store pass. Most useful
// together with WithDataDir, where a miss is a real disk read.
func WithDataNodeCache(n int64) Option {
	return func(o *sysOptions) { o.nodeCacheBytes = n }
}

// WithTelemetry instruments the whole system on one shared metrics
// registry — every daemon's RPC path, the storage substrate's lock and
// meta-op stats, the repair engine, and (when the control plane runs)
// the repair manager — and gives each daemon a bounded span store so
// sampled requests leave a collectable trace. cfg.HTTP additionally
// starts a loopback /metrics + /debug/traces listener per daemon.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(o *sysOptions) { o.teleCfg = &cfg }
}

// System is a running serving cluster.
type System struct {
	cluster hdfs.Metadata
	code    ec.Code
	nn      *NameNode
	mgr     *repairmgr.Manager // nil when the control plane is disabled
	hbEvery time.Duration

	reg     *telemetry.Registry // nil when telemetry is disabled
	teleCfg TelemetryConfig

	mu  sync.Mutex
	dns []*DataNode // nil entry = machine's daemon currently down
}

// nodeTele builds one daemon's telemetry handle (nil when the system
// runs without WithTelemetry).
func (s *System) nodeTele(role, proc string) (*nodeTelemetry, error) {
	if s.reg == nil {
		return nil, nil
	}
	return newNodeTelemetry(s.reg, s.teleCfg, role, proc)
}

// Start builds the storage cluster from cfg and brings up one datanode
// daemon per machine plus the namenode. Close must be called to
// release the listeners.
func Start(cfg hdfs.Config, opts ...Option) (*System, error) {
	var o sysOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &System{code: cfg.Code}
	if o.teleCfg != nil {
		s.reg = telemetry.NewRegistry()
		s.teleCfg = *o.teleCfg
		// The substrate and the control plane pick their instruments off
		// the same registry, so one scrape shows every tier.
		cfg.Telemetry = s.reg
	}
	if o.dataDir != "" {
		cfg.StoreFactory = hdfs.ExtentStoreFactory(o.dataDir, extent.Options{
			Fsync:     o.fsync,
			Telemetry: s.reg,
		})
	}
	if o.nodeCacheBytes > 0 {
		cfg.NodeCacheBytes = o.nodeCacheBytes
	}
	cluster, err := hdfs.Open(cfg)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	if o.mgrCfg != nil {
		mgrCfg := *o.mgrCfg
		if s.reg != nil {
			mgrCfg.Telemetry = s.reg
		}
		mgr, err := repairmgr.New(cluster, mgrCfg)
		if err != nil {
			return nil, err
		}
		s.mgr = mgr
		s.hbEvery = o.hbInterval
		if s.hbEvery <= 0 {
			// Three beats per suspect window keeps one lost frame from
			// mattering.
			suspectAfter := o.mgrCfg.SuspectAfter
			if suspectAfter <= 0 {
				suspectAfter = repairmgr.DefaultConfig().SuspectAfter
			}
			s.hbEvery = suspectAfter / 3
			if s.hbEvery < 5*time.Millisecond {
				s.hbEvery = 5 * time.Millisecond
			}
		}
	}
	s.dns = make([]*DataNode, cluster.Machines())
	for m := range s.dns {
		tele, err := s.nodeTele("datanode", "datanode-"+strconv.Itoa(m))
		if err != nil {
			s.Close()
			return nil, err
		}
		dn, err := startDataNode(cluster, m, tele)
		if err != nil {
			tele.close()
			s.Close()
			return nil, err
		}
		s.dns[m] = dn
	}
	nnTele, err := s.nodeTele("namenode", "namenode")
	if err != nil {
		s.Close()
		return nil, err
	}
	nn, err := startNameNode(cluster, cfg.Code, cfg.BlockSize, s, s.mgr, nnTele)
	if err != nil {
		nnTele.close()
		s.Close()
		return nil, err
	}
	s.nn = nn
	if s.mgr != nil {
		// Heartbeats need the namenode's address, so they start last;
		// the detector registered every node alive at construction, so
		// nothing is suspect before the first beats flow.
		s.mu.Lock()
		for _, dn := range s.dns {
			if dn != nil {
				dn.startHeartbeats(nn.Addr(), s.hbEvery)
			}
		}
		s.mu.Unlock()
		s.mgr.Start()
	}
	return s, nil
}

// RepairManager exposes the control plane for tests and benchmarks
// (nil when Start ran without WithRepairManager).
func (s *System) RepairManager() *repairmgr.Manager { return s.mgr }

// Telemetry returns the system-wide metrics registry (nil when Start
// ran without WithTelemetry).
func (s *System) Telemetry() *telemetry.Registry { return s.reg }

// MetricsAddr returns the namenode's debug HTTP address ("" unless
// WithTelemetry ran with HTTP enabled).
func (s *System) MetricsAddr() string { return s.nn.DebugAddr() }

// DataNodeMetricsAddr returns one datanode daemon's debug HTTP address
// ("" when that daemon is down or HTTP is disabled).
func (s *System) DataNodeMetricsAddr(machine int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if machine < 0 || machine >= len(s.dns) || s.dns[machine] == nil {
		return ""
	}
	return s.dns[machine].DebugAddr()
}

// NameAddr returns the namenode's address — the only address a Client
// needs.
func (s *System) NameAddr() string { return s.nn.Addr() }

// Cluster exposes the storage substrate's metadata plane for
// in-process inspection (tests, victim selection in the load
// generator). Callers get the hdfs.Metadata interface — the substrate
// may be a single Cluster or a ShardedCluster.
func (s *System) Cluster() hdfs.Metadata { return s.cluster }

// Code returns the cluster's codec.
func (s *System) Code() ec.Code { return s.code }

// dataNodeAddrs snapshots the address table: index = machine id, ""
// for a machine whose daemon is down.
func (s *System) dataNodeAddrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.dns))
	for m, dn := range s.dns {
		if dn != nil {
			out[m] = dn.Addr()
		}
	}
	return out
}

// KillDataNode fails the machine and tears down its daemon: the
// namenode stops listing it first (so refreshed metadata is
// consistent), then every open connection to it is severed. With a
// persistent store (WithDataDir) the kill is a real crash: the store
// handle closes and the machine's in-memory block index is discarded —
// only the segment files on disk survive.
func (s *System) KillDataNode(machine int) error { return s.killDataNode(machine) }

func (s *System) killDataNode(machine int) error {
	s.mu.Lock()
	if machine < 0 || machine >= len(s.dns) {
		s.mu.Unlock()
		return fmt.Errorf("serve: no machine %d", machine)
	}
	dn := s.dns[machine]
	s.dns[machine] = nil
	s.mu.Unlock()
	if err := s.cluster.CrashMachine(machine); err != nil {
		return err
	}
	if dn != nil {
		dn.close()
	}
	return nil
}

// RestartDataNode brings the machine back and relaunches its daemon on
// a fresh port; clients discover the new address through the
// namenode's info method. With a persistent store the machine's block
// index is RECONSTRUCTED by sequentially scanning its segment files —
// the restart serves exactly what the disk holds, not what a
// conveniently retained map remembers.
func (s *System) RestartDataNode(machine int) error { return s.restartDataNode(machine) }

func (s *System) restartDataNode(machine int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if machine < 0 || machine >= len(s.dns) {
		return fmt.Errorf("serve: no machine %d", machine)
	}
	if s.dns[machine] != nil {
		return nil // already up
	}
	if err := s.cluster.RecoverMachine(machine); err != nil {
		return err
	}
	tele, err := s.nodeTele("datanode", "datanode-"+strconv.Itoa(machine))
	if err != nil {
		return err
	}
	dn, err := startDataNode(s.cluster, machine, tele)
	if err != nil {
		tele.close()
		return err
	}
	s.dns[machine] = dn
	if s.mgr != nil {
		// Re-register with the failure detector: restart the heartbeat
		// loop AND deliver one beat synchronously, so a restart inside
		// the grace window cancels the pending repair instead of racing
		// the next heartbeat tick against the death deadline.
		dn.startHeartbeats(s.nn.Addr(), s.hbEvery)
		if err := s.mgr.Heartbeat(machine); err != nil {
			return err
		}
	}
	return nil
}

// ThrottleDataNode delays every data-path RPC (dn.read, dn.partial)
// on the machine's daemon by delay — the injected shape of a machine
// that is slow but alive. Heartbeats keep flowing, so the failure
// detector never confuses the slowdown with a death; clients see it
// purely as latency. delay 0 clears the throttle; a restart also
// clears it (the fresh daemon starts unthrottled).
func (s *System) ThrottleDataNode(machine int, delay time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if machine < 0 || machine >= len(s.dns) {
		return fmt.Errorf("serve: no machine %d", machine)
	}
	dn := s.dns[machine]
	if dn == nil {
		return fmt.Errorf("serve: machine %d daemon is down", machine)
	}
	dn.setThrottle(delay)
	return nil
}

// Close tears down the control plane, the namenode, and every
// datanode daemon.
func (s *System) Close() error {
	if s.mgr != nil {
		s.mgr.Stop()
	}
	if s.nn != nil {
		s.nn.close()
	}
	s.mu.Lock()
	dns := append([]*DataNode(nil), s.dns...)
	s.mu.Unlock()
	for _, dn := range dns {
		if dn != nil {
			dn.close()
		}
	}
	if s.cluster != nil {
		return s.cluster.Close()
	}
	return nil
}
