// System wires a full serving cluster together on localhost: one
// hdfs.Cluster as the storage substrate, one datanode daemon per
// machine, and one namenode fronting the metadata — each on its own
// TCP port. It is also the failure injector: KillDataNode marks the
// machine dead at the namenode AND tears down its daemon with every
// open connection, so clients experience the same thing a real machine
// loss produces — connections cut mid-frame, then metadata that no
// longer lists the machine.
package serve

import (
	"fmt"
	"sync"

	"repro/internal/ec"
	"repro/internal/hdfs"
)

// System is a running serving cluster.
type System struct {
	cluster *hdfs.Cluster
	code    ec.Code
	nn      *NameNode

	mu  sync.Mutex
	dns []*DataNode // nil entry = machine's daemon currently down
}

// Start builds the storage cluster from cfg and brings up one datanode
// daemon per machine plus the namenode. Close must be called to
// release the listeners.
func Start(cfg hdfs.Config) (*System, error) {
	cluster, err := hdfs.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{cluster: cluster, code: cfg.Code}
	s.dns = make([]*DataNode, cluster.Machines())
	for m := range s.dns {
		dn, err := startDataNode(cluster, m)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.dns[m] = dn
	}
	nn, err := startNameNode(cluster, cfg.Code, cfg.BlockSize, s)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.nn = nn
	return s, nil
}

// NameAddr returns the namenode's address — the only address a Client
// needs.
func (s *System) NameAddr() string { return s.nn.Addr() }

// Cluster exposes the storage substrate for in-process inspection
// (tests, victim selection in the load generator).
func (s *System) Cluster() *hdfs.Cluster { return s.cluster }

// Code returns the cluster's codec.
func (s *System) Code() ec.Code { return s.code }

// dataNodeAddrs snapshots the address table: index = machine id, ""
// for a machine whose daemon is down.
func (s *System) dataNodeAddrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.dns))
	for m, dn := range s.dns {
		if dn != nil {
			out[m] = dn.Addr()
		}
	}
	return out
}

// KillDataNode fails the machine and tears down its daemon: the
// namenode stops listing it first (so refreshed metadata is
// consistent), then every open connection to it is severed.
func (s *System) KillDataNode(machine int) error { return s.killDataNode(machine) }

func (s *System) killDataNode(machine int) error {
	s.mu.Lock()
	if machine < 0 || machine >= len(s.dns) {
		s.mu.Unlock()
		return fmt.Errorf("serve: no machine %d", machine)
	}
	dn := s.dns[machine]
	s.dns[machine] = nil
	s.mu.Unlock()
	s.cluster.FailMachine(machine)
	if dn != nil {
		dn.close()
	}
	return nil
}

// RestartDataNode brings the machine back with its blocks intact and
// relaunches its daemon on a fresh port; clients discover the new
// address through the namenode's info method.
func (s *System) RestartDataNode(machine int) error { return s.restartDataNode(machine) }

func (s *System) restartDataNode(machine int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if machine < 0 || machine >= len(s.dns) {
		return fmt.Errorf("serve: no machine %d", machine)
	}
	if s.dns[machine] != nil {
		return nil // already up
	}
	dn, err := startDataNode(s.cluster, machine)
	if err != nil {
		return err
	}
	s.cluster.RestoreMachine(machine)
	s.dns[machine] = dn
	return nil
}

// Close tears down the namenode and every datanode daemon.
func (s *System) Close() error {
	if s.nn != nil {
		s.nn.close()
	}
	s.mu.Lock()
	dns := append([]*DataNode(nil), s.dns...)
	s.mu.Unlock()
	for _, dn := range dns {
		if dn != nil {
			dn.close()
		}
	}
	return nil
}
