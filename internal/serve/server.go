// Generic framed-RPC server scaffolding shared by the namenode and
// datanode daemons: a localhost TCP listener, one goroutine per
// connection, request/response frames in lockstep, and a Close that
// tears down the listener and every open connection (the mechanism
// behind "kill a datanode mid-read").
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// handlerFunc answers one request. The returned payload rides in the
// response frame's payload section.
type handlerFunc func(req *request, payload []byte) (*response, []byte)

// server is one TCP daemon.
type server struct {
	ln     net.Listener
	handle handlerFunc
	tele   *nodeTelemetry // nil disables instrumentation and tracing

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// errTracingDisabled answers debug.trace on an uninstrumented daemon.
var errTracingDisabled = errors.New("serve: telemetry disabled")

// newServer listens on an ephemeral localhost port and starts the
// accept loop. tele may be nil (no instrumentation).
func newServer(handle handlerFunc, tele *nodeTelemetry) (*server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &server{ln: ln, handle: handle, tele: tele, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// addr returns the listen address ("127.0.0.1:port").
func (s *server) addr() string { return s.ln.Addr().String() }

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn answers frames in lockstep until the connection dies or the
// server closes.
func (s *server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		var req request
		payload, err := readFrame(br, &req)
		if err != nil {
			return
		}
		resp, out := s.dispatch(&req, payload)
		if err := writeFrame(bw, resp, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// safeHandle runs the handler with a recover barrier: a panic on one
// request (a validation gap, a hostile frame a guard missed) becomes a
// remote error on that connection instead of taking down the whole
// process — the namenode and every datanode daemon share it.
func (s *server) safeHandle(req *request, payload []byte) (resp *response, out []byte) {
	defer func() {
		if r := recover(); r != nil {
			resp, out = errResponse(fmt.Errorf("serve: internal error handling %q: %v", req.Method, r)), nil
		}
	}()
	resp, out = s.handle(req, payload)
	return resp, out
}

// close stops the listener and severs every open connection. In-flight
// requests are cut off mid-frame — exactly what a machine failure looks
// like to a client.
func (s *server) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
