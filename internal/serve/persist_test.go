package serve

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
	"repro/internal/testutil/leakcheck"
)

// startPersistentManagedSystem is startManagedSystem with every
// datanode backed by an on-disk extent store under a test temp dir,
// plus telemetry (the tests assert on the store's scan counters).
func startPersistentManagedSystem(t *testing.T, mcfg repairmgr.Config) *System {
	t.Helper()
	leakcheck.Cleanup(t)
	code := testCodecs(t)[0] // rs(4,2)
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	},
		WithRepairManager(mcfg),
		WithDataDir(t.TempDir()),
		WithTelemetry(TelemetryConfig{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// TestPersistentRestartWithinGraceZeroRepairBytes is the honest
// version of the grace-window save, end to end: the kill CLOSES the
// victim's store (its in-memory block index is gone), the restart
// rebuilds the index by scanning segment files on disk, the recovered
// inventory serves CRC-verified bytes — and because the machine came
// back inside the grace window with its data provably intact, the
// repair manager moves zero repair bytes. Before the persistent store,
// this scenario passed vacuously: "restart" just flipped a liveness
// flag over a map that was never dropped.
func TestPersistentRestartWithinGraceZeroRepairBytes(t *testing.T) {
	grace := 2 * time.Second
	sys := startPersistentManagedSystem(t, repairmgr.Config{
		SuspectAfter: 150 * time.Millisecond,
		GraceWindow:  grace,
		PollInterval: 20 * time.Millisecond,
	})
	files := preloadRaided(t, sys, 2)
	locs, err := sys.Cluster().BlockLocations("f-0")
	if err != nil {
		t.Fatal(err)
	}
	victim := locs[0][0]
	bytesBefore := sys.Cluster().Network().CrossRackBytes()
	scansBefore := sys.Telemetry().Snapshot().Counters["extent_scan_records_total"]

	killedAt := time.Now()
	if err := sys.KillDataNode(victim); err != nil {
		t.Fatal(err)
	}
	// The kill is a real crash: the machine's store handle is closed
	// and its in-memory index discarded. BlocksOn still answers — from
	// namenode metadata, the only surviving view — because the repair
	// manager's grace-window estimate asks exactly this about machines
	// that just died.
	if got := sys.Cluster().BlocksOn(victim); len(got) == 0 {
		t.Fatal("metadata forgot the crashed machine's blocks")
	}

	waitFor(t, grace/2, "victim to turn suspect", func() bool {
		return sys.RepairManager().NodeState(victim) == repairmgr.StateSuspect
	})
	if err := sys.RestartDataNode(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, grace/2, "victim back to alive", func() bool {
		return sys.RepairManager().NodeState(victim) == repairmgr.StateAlive
	})

	// The restart rebuilt the index from disk: segment records were
	// scanned, and the machine again reports inventory.
	if got := sys.Telemetry().Snapshot().Counters["extent_scan_records_total"]; got <= scansBefore {
		t.Fatalf("restart scanned no segment records (%d -> %d)", scansBefore, got)
	}
	if got := sys.Cluster().BlocksOn(victim); len(got) == 0 {
		t.Fatal("restarted machine recovered no blocks from disk")
	}

	// Sleep out the would-have-been death deadline, then assert the
	// save: zero repairs, zero repair traffic.
	time.Sleep(time.Until(killedAt.Add(150*time.Millisecond + grace + 500*time.Millisecond)))
	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.RepairStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairsDone != 0 || st.QueueDepth != 0 {
		t.Fatalf("restart-from-disk triggered repairs: %+v", st)
	}
	if st.AvoidedRepairs == 0 {
		t.Fatalf("grace-window save not accounted: %+v", st)
	}
	if got := sys.Cluster().Network().CrossRackBytes() - bytesBefore; got != 0 {
		t.Fatalf("kill-then-restart-from-disk moved %d repair bytes, want 0", got)
	}

	// CRC-verified inventory: every byte of every file reads back
	// identically through the wire — each datanode read re-verifies the
	// stored payload's record CRC against the disk.
	for name, want := range files {
		got, err := cl.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content differs after restart-from-disk", name)
		}
	}
	if c := cl.Counters(); c.DegradedBlocks != 0 || c.CorruptReplicas != 0 {
		t.Fatalf("post-recovery reads were not healthy: %+v", c)
	}
}

// TestPersistentCorruptedSegmentTargetedRepair is the second
// acceptance property: flip bytes in ONE replica's segment file; the
// scrubber evicts exactly that replica, the fixer re-replicates only
// the affected block, and reads stay byte-identical throughout.
func TestPersistentCorruptedSegmentTargetedRepair(t *testing.T) {
	leakcheck.Cleanup(t)
	code := testCodecs(t)[0]
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	}, WithDataDir(t.TempDir()), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want := make(map[string][]byte)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("f-%d", i)
		data := bytes.Repeat([]byte{byte('a' + i)}, 2*4096+100)
		if err := cl.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}

	// Rot one byte of f-1's first block on its first holder — ON DISK.
	_, info, err := sys.Cluster().FileBlocks("f-1")
	if err != nil {
		t.Fatal(err)
	}
	victimBlock := info[0].ID
	locs, err := sys.Cluster().BlockLocations("f-1")
	if err != nil {
		t.Fatal(err)
	}
	victimMachine := locs[0][0]
	if err := sys.Cluster().InjectBitRot(victimMachine, victimBlock, 99); err != nil {
		t.Fatal(err)
	}

	// The scrubber finds it via the store's disk CRC and evicts only
	// that replica.
	rep, err := sys.Cluster().RunScrubber()
	if err != nil {
		t.Fatalf("scrub pass aborted: %v", err)
	}
	if rep.CorruptReplicas != 1 || len(rep.AffectedBlocks) != 1 || rep.AffectedBlocks[0] != victimBlock {
		t.Fatalf("scrub evicted %d replicas, affected %v; want 1 and [%d]",
			rep.CorruptReplicas, rep.AffectedBlocks, victimBlock)
	}
	if n := sys.Telemetry().Snapshot().Counters["extent_crc_failures_total"]; n == 0 {
		t.Fatal("corruption was not detected at the extent store")
	}

	// Targeted re-repair: exactly one block re-replicated, nothing else.
	fix, err := cl.RunBlockFixer()
	if err != nil {
		t.Fatal(err)
	}
	if fix.ReReplicated != 1 || fix.RepairedStriped != 0 || fix.Unrecoverable != 0 {
		t.Fatalf("fixer did non-targeted work: %+v", fix)
	}
	for name, data := range want {
		got, err := cl.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: content differs after targeted repair", name)
		}
	}
}

// TestServeCorruptReplicaFallsBackDegraded: when a datanode refuses a
// raided block's only replica on checksum grounds, the CLIENT treats
// it like a dead replica — counts it, reconstructs through the stripe,
// and returns correct bytes.
func TestServeCorruptReplicaFallsBackDegraded(t *testing.T) {
	leakcheck.Cleanup(t)
	code := testCodecs(t)[0]
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	}, WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	files := preloadRaided(t, sys, 1)

	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, info, err := sys.Cluster().FileBlocks("f-0")
	if err != nil {
		t.Fatal(err)
	}
	locs, err := sys.Cluster().BlockLocations("f-0")
	if err != nil {
		t.Fatal(err)
	}
	// A raided block holds exactly one replica; rot it on disk.
	for _, m := range locs[0] {
		if err := sys.Cluster().InjectBitRot(m, info[0].ID, 5); err != nil {
			t.Fatal(err)
		}
	}

	got, err := cl.ReadFile("f-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["f-0"]) {
		t.Fatal("degraded read returned wrong bytes")
	}
	c := cl.Counters()
	if c.CorruptReplicas == 0 {
		t.Fatalf("corrupt replica not counted: %+v", c)
	}
	if c.DegradedBlocks == 0 {
		t.Fatalf("read did not take the degraded path: %+v", c)
	}
}

// TestClientOutlivesTimeout pins the per-exchange deadline semantics:
// a client whose configured timeout is far shorter than its lifetime
// keeps working — across idle gaps longer than the timeout and across
// request sequences whose total wall time exceeds it many times over.
// Under dial-time (or never-disarmed) deadlines, the exchanges after
// the first gap fail with i/o timeouts.
func TestClientOutlivesTimeout(t *testing.T) {
	leakcheck.Cleanup(t)
	code := testCodecs(t)[0]
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	timeout := 250 * time.Millisecond
	cl, err := Dial(sys.NameAddr(), sys.Code(), WithTimeout(timeout))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	data := bytes.Repeat([]byte{7}, 4096+17)
	if err := cl.WriteFile("long-lived", data); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	for i := 0; time.Since(start) < 3*timeout; i++ {
		got, err := cl.ReadFile("long-lived")
		if err != nil {
			t.Fatalf("request %d at +%v (timeout %v): %v", i, time.Since(start), timeout, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("request %d returned wrong bytes", i)
		}
		// Idle the pooled connections past the timeout mid-sequence: a
		// deadline left armed from the previous exchange would fire here.
		if i == 1 {
			time.Sleep(timeout + 50*time.Millisecond)
		}
	}
}
