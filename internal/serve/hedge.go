// Latency-aware replica selection and hedged degraded reads. Every
// datanode RPC feeds a per-machine EWMA; replica orderings put the
// observably fast machines first (rotating among near-ties for load
// spread) instead of blind rotation. On top of the ordering sits the
// hedge engine: when a striped block's primary replica chain is slow —
// slower than a configured or quantile-derived delay — the client
// launches a stripe reconstruction in parallel and returns whichever
// path answers first. A slow-but-alive datanode then costs one hedge
// delay, not a full RPC timeout, and is never declared dead for being
// slow.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

const (
	// ewmaAlpha weighs the newest latency sample: high enough to track
	// a node that turns slow within a few reads, low enough that one
	// outlier does not reorder replicas.
	ewmaAlpha = 0.3

	// latWindow is the ring of recent per-RPC latencies backing the
	// adaptive hedge delay quantile.
	latWindow = 128

	// latencySlack is the near-tie band for replica ordering: machines
	// within this factor of the fastest EWMA rotate as equals, so small
	// jitter does not funnel every read to one replica.
	latencySlack = 1.2

	// hedgeQuantile and hedgeDelayFactor derive the adaptive hedge
	// delay: fire when the primary is slower than hedgeDelayFactor
	// times the recent p95 — clearly an outlier, not jitter.
	hedgeQuantile    = 0.95
	hedgeDelayFactor = 3

	// coldHedgeDelay is the hedge delay before any latency samples
	// exist, and the floor under the adaptive delay.
	coldHedgeDelay = 50 * time.Millisecond
	minHedgeDelay  = 2 * time.Millisecond
)

// latencyTracker keeps a per-machine EWMA of datanode RPC latencies
// plus a ring of recent samples for the adaptive hedge-delay quantile.
type latencyTracker struct {
	mu   sync.Mutex
	ewma []float64 // nanos per machine; 0 = never sampled
	win  []time.Duration
	next int
	full bool
}

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{win: make([]time.Duration, latWindow)}
}

// observe folds one RPC round-trip time into the machine's EWMA and
// the recent-sample ring.
func (l *latencyTracker) observe(machine int, d time.Duration) {
	if machine < 0 || d <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for machine >= len(l.ewma) {
		l.ewma = append(l.ewma, 0)
	}
	if l.ewma[machine] == 0 {
		l.ewma[machine] = float64(d)
	} else {
		l.ewma[machine] = (1-ewmaAlpha)*l.ewma[machine] + ewmaAlpha*float64(d)
	}
	l.win[l.next] = d
	l.next = (l.next + 1) % len(l.win)
	if l.next == 0 {
		l.full = true
	}
}

// estimate returns the machine's EWMA latency in nanos (0 = never
// sampled).
func (l *latencyTracker) estimate(machine int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if machine < 0 || machine >= len(l.ewma) {
		return 0
	}
	return l.ewma[machine]
}

// quantile returns the q-quantile of the recent latency window, or 0
// with no samples yet.
func (l *latencyTracker) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.win)
	}
	samples := append([]time.Duration(nil), l.win[:n]...)
	l.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)))
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// replicaOrder returns the machines to try, fastest first: machines
// whose EWMA sits within latencySlack of the best — plus never-sampled
// ones, which deserve a probe — form a front tier rotated by the
// client's read counter for load spread; the measurably slower rest
// follow in ascending latency order. With no samples at all this
// degrades to exactly the old seeded rotation.
func (c *Client) replicaOrder(locations []int) []int {
	n := len(locations)
	if n <= 1 {
		return locations
	}
	est := make([]float64, n)
	best := 0.0
	for i, m := range locations {
		est[i] = c.lat.estimate(m)
		if est[i] > 0 && (best == 0 || est[i] < best) {
			best = est[i]
		}
	}
	fast := make([]int, 0, n)
	var slow []int
	for i, m := range locations {
		if est[i] == 0 || est[i] <= best*latencySlack {
			fast = append(fast, m)
		} else {
			slow = append(slow, i)
		}
	}
	sort.Slice(slow, func(a, b int) bool { return est[slow[a]] < est[slow[b]] })
	out := make([]int, 0, n)
	start := int(c.rr.Add(1)) % len(fast)
	for i := 0; i < len(fast); i++ {
		out = append(out, fast[(start+i)%len(fast)])
	}
	for _, i := range slow {
		out = append(out, locations[i])
	}
	return out
}

// hedgeDelayNow resolves the delay before a slow primary triggers a
// parallel reconstruction: the configured delay, or (when configured
// adaptive) a multiple of the recent latency p95.
func (c *Client) hedgeDelayNow() time.Duration {
	if c.hedgeDelay > 0 {
		return c.hedgeDelay
	}
	p := c.lat.quantile(hedgeQuantile)
	if p == 0 {
		return coldHedgeDelay
	}
	d := p * hedgeDelayFactor
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d
}

// hedgeResult is one arm's answer in the primary-vs-reconstruction
// race. Channels carrying it are buffered so the losing arm's
// goroutine sends and exits instead of leaking.
type hedgeResult struct {
	data []byte
	err  error
}

// hedgedRead races the replica chain against a delayed stripe
// reconstruction and returns whichever answers first with the block's
// bytes; degraded reports whether reconstruction served the read. The
// timer only arms the hedge — a primary that answers before it fires
// costs nothing extra. The losing arm is left to finish into a
// buffered channel and its result is dropped; neither arm is ever
// cancelled mid-RPC, so a hedge never poisons the winner's pooled
// connection.
func (c *Client) hedgedRead(b wireBlock) (data []byte, degraded bool, err error) {
	primary := make(chan hedgeResult, 1)
	go func() {
		var lastErr error
		for _, m := range c.replicaOrder(b.Locations) {
			data, err := c.dnRead(m, b.ID, 0, b.Size, nil)
			if err == nil {
				primary <- hedgeResult{data: data}
				return
			}
			if isCorruptReplicaErr(err) {
				c.cCorruptReps.Inc()
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("serve: block %d has no replicas to read", b.ID)
		}
		primary <- hedgeResult{err: lastErr}
	}()

	timer := time.NewTimer(c.hedgeDelayNow())
	defer timer.Stop()
	timerC := timer.C
	var hedge chan hedgeResult
	for {
		select {
		case r := <-primary:
			if r.err == nil {
				return r.data, false, nil
			}
			primary = nil
			if hedge == nil {
				// The whole replica chain failed before the hedge
				// armed: this is a plain degraded read, not a hedge.
				data, derr := c.degradedRead(b)
				return data, derr == nil, derr
			}
			// Reconstruction is already in flight; wait it out.
		case <-timerC:
			timerC = nil
			c.cHedgedReads.Inc()
			hedge = make(chan hedgeResult, 1)
			go func() {
				data, err := c.degradedRead(b)
				hedge <- hedgeResult{data: data, err: err}
			}()
		case r := <-hedge:
			if r.err == nil {
				if primary != nil {
					// Reconstruction beat a still-pending primary —
					// the hedge paid off.
					c.cHedgeWins.Inc()
				}
				return r.data, true, nil
			}
			hedge = nil
			if primary == nil {
				return nil, false, r.err
			}
			// Primary still pending; let it finish.
		}
	}
}
