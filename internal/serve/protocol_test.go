package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// shortTimeout bounds robustness-test RPCs so a regression that hangs
// fails fast instead of stalling the suite.
const shortTimeout = 2 * time.Second

// --- Frame codec robustness -------------------------------------------

// TestReadFrameTruncations: a frame cut anywhere — preamble, header,
// payload — returns an error, never a partial success.
func TestReadFrameTruncations(t *testing.T) {
	var full bytes.Buffer
	if err := writeFrame(&full, &request{Method: "dn.read", Length: 64}, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		var req request
		_, err := readFrame(bytes.NewReader(raw[:cut]), &req)
		if err == nil {
			t.Fatalf("frame truncated at %d of %d bytes accepted", cut, len(raw))
		}
	}
	// The intact frame still parses (the loop above must not be
	// vacuously passing on a broken encoder).
	var req request
	payload, err := readFrame(bytes.NewReader(raw), &req)
	if err != nil || req.Method != "dn.read" || string(payload) != "payload-bytes" {
		t.Fatalf("intact frame broken: %v %+v %q", err, req, payload)
	}
}

// TestReadFrameOversizedDeclaredLengths: hostile header and payload
// lengths are rejected before any allocation of that size.
func TestReadFrameOversizedDeclaredLengths(t *testing.T) {
	cases := map[string][8]byte{}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:4], maxHeaderBytes+1)
	binary.BigEndian.PutUint32(pre[4:8], 0)
	cases["header"] = pre
	binary.BigEndian.PutUint32(pre[0:4], 2)
	binary.BigEndian.PutUint32(pre[4:8], maxPayloadBytes+1)
	cases["payload"] = pre
	for name, preamble := range cases {
		var req request
		_, err := readFrame(bytes.NewReader(append(preamble[:], 0x7b, 0x7d)), &req)
		if !errors.Is(err, errFrameTooLarge) {
			t.Errorf("oversized %s length: got %v, want errFrameTooLarge", name, err)
		}
	}
}

// TestReadFrameCorruptHeader: declared lengths fine, JSON garbage.
func TestReadFrameCorruptHeader(t *testing.T) {
	hdr := []byte(`{"method": not-json!`)
	var buf bytes.Buffer
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(len(hdr)))
	binary.BigEndian.PutUint32(pre[4:8], 0)
	buf.Write(pre[:])
	buf.Write(hdr)
	var req request
	if _, err := readFrame(&buf, &req); err == nil || !strings.Contains(err.Error(), "bad frame header") {
		t.Fatalf("corrupt JSON header: got %v", err)
	}
}

// --- Server-side robustness -------------------------------------------

// robustServer starts a datanode daemon for hostile-input tests and a
// healthy client call to prove the daemon survived.
func robustServer(t *testing.T) (addr string, healthy func() error) {
	t.Helper()
	sys := startTestSystem(t, testCodecs(t)[0])
	dnAddr := sys.dataNodeAddrs()[0]
	healthy = func() error {
		cn, err := dialConn(dnAddr, shortTimeout)
		if err != nil {
			return err
		}
		defer cn.close()
		_, _, err = cn.call(&request{Method: methodDNPing}, nil, shortTimeout)
		return err
	}
	return dnAddr, healthy
}

// TestServerSurvivesHostileBytes: raw garbage, oversized declared
// lengths, and mid-frame hangups must drop the offending connection —
// and nothing else. The daemon keeps answering healthy clients.
func TestServerSurvivesHostileBytes(t *testing.T) {
	addr, healthy := robustServer(t)
	hostile := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),     // not our protocol
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // absurd header length
		func() []byte { // valid preamble, junk JSON
			hdr := []byte("{broken")
			var b bytes.Buffer
			var pre [8]byte
			binary.BigEndian.PutUint32(pre[0:4], uint32(len(hdr)))
			b.Write(pre[:])
			b.Write(hdr)
			return b.Bytes()
		}(),
		func() []byte { // declares a payload, never sends it (mid-frame drop)
			var b bytes.Buffer
			if err := writeFrame(&b, &request{Method: methodDNRead, Length: 1 << 20}, nil); err != nil {
				t.Fatal(err)
			}
			raw := b.Bytes()
			binary.BigEndian.PutUint32(raw[4:8], 1<<20) // promise 1 MiB payload
			return raw
		}(),
	}
	for i, blob := range hostile {
		nc, err := net.DialTimeout("tcp", addr, shortTimeout)
		if err != nil {
			t.Fatalf("case %d: dial: %v", i, err)
		}
		if _, err := nc.Write(blob); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		nc.Close() // hang up mid-conversation
		if err := healthy(); err != nil {
			t.Fatalf("case %d: daemon unhealthy after hostile bytes: %v", i, err)
		}
	}
}

// TestServerRejectsMalformedPartialTrees: structurally hostile
// dn.partial requests come back as remote errors — never a panic, hang,
// or giant allocation.
func TestServerRejectsMalformedPartialTrees(t *testing.T) {
	addr, healthy := robustServer(t)
	deepTree := func(depth int) *wirePartialNode {
		n := &wirePartialNode{Machine: 0}
		for i := 0; i < depth; i++ {
			n = &wirePartialNode{Machine: 0, Children: []wirePartialNode{*n}}
			n.Children[0].Addr = addr
		}
		return n
	}
	cases := []struct {
		name string
		req  *request
	}{
		{"missing tree", &request{Method: methodDNPartial, Length: 64}},
		{"zero target", &request{Method: methodDNPartial, Length: 0, Partial: &wirePartialNode{Machine: 0}}},
		{"oversized target", &request{Method: methodDNPartial, Length: maxPayloadBytes + 1, Partial: &wirePartialNode{Machine: 0}}},
		{"target beyond shard bound", &request{Method: methodDNPartial, Length: 1 << 20, Partial: &wirePartialNode{Machine: 0}}},
		{"term outside target", &request{Method: methodDNPartial, Length: 64, Partial: &wirePartialNode{
			Machine: 0, Terms: []wirePartialTerm{{Block: 0, Offset: 0, Length: 32, TargetOff: 48, Coeff: 1}},
		}}},
		{"term overflowing int64", &request{Method: methodDNPartial, Length: 64, Partial: &wirePartialNode{
			Machine: 0, Terms: []wirePartialTerm{{Block: 0, Offset: 0, Length: 1 << 62, TargetOff: 1 << 62, Coeff: 1}},
		}}},
		{"negative term", &request{Method: methodDNPartial, Length: 64, Partial: &wirePartialNode{
			Machine: 0, Terms: []wirePartialTerm{{Block: 0, Offset: -4, Length: 8, Coeff: 1}},
		}}},
		{"child missing addr", &request{Method: methodDNPartial, Length: 64, Partial: &wirePartialNode{
			Machine: 0, Children: []wirePartialNode{{Machine: 1}},
		}}},
		{"tree too deep", &request{Method: methodDNPartial, Length: 64, Partial: deepTree(maxPartialNodes + 8)}},
		{"wrong machine", &request{Method: methodDNPartial, Length: 64, Partial: &wirePartialNode{Machine: 7}}},
	}
	for _, tc := range cases {
		cn, err := dialConn(addr, shortTimeout)
		if err != nil {
			t.Fatalf("%s: dial: %v", tc.name, err)
		}
		_, _, err = cn.call(tc.req, nil, shortTimeout)
		cn.close()
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Errorf("%s: got %v, want a RemoteError", tc.name, err)
		}
		if err := healthy(); err != nil {
			t.Fatalf("%s: daemon unhealthy afterwards: %v", tc.name, err)
		}
	}
}

// --- Client-side robustness -------------------------------------------

// misbehavingServer accepts one connection, reads the request frame,
// sends whatever respond writes, and closes.
func misbehavingServer(t *testing.T, respond func(c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var req request
				if _, err := readFrame(c, &req); err != nil {
					return
				}
				respond(c)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestClientSurvivesMisbehavingServer: truncated responses, corrupt
// response JSON, oversized declared lengths, and mid-frame hangups all
// surface as errors on the client — within the timeout, never a panic.
func TestClientSurvivesMisbehavingServer(t *testing.T) {
	cases := []struct {
		name    string
		respond func(c net.Conn)
	}{
		{"immediate close", func(c net.Conn) {}},
		{"half a preamble", func(c net.Conn) { c.Write([]byte{0, 0}) }},
		{"mid-frame drop", func(c net.Conn) {
			var b bytes.Buffer
			if err := writeFrame(&b, okResponse(), make([]byte, 4096)); err != nil {
				return
			}
			c.Write(b.Bytes()[:20]) // preamble + a sliver, then close
		}},
		{"corrupt response json", func(c net.Conn) {
			hdr := []byte("{oops")
			var pre [8]byte
			binary.BigEndian.PutUint32(pre[0:4], uint32(len(hdr)))
			c.Write(pre[:])
			c.Write(hdr)
		}},
		{"oversized response payload", func(c net.Conn) {
			var pre [8]byte
			binary.BigEndian.PutUint32(pre[0:4], 2)
			binary.BigEndian.PutUint32(pre[4:8], maxPayloadBytes+1)
			c.Write(pre[:])
			c.Write([]byte("{}"))
		}},
		{"silence until deadline", func(c net.Conn) {
			buf := make([]byte, 1)
			c.SetReadDeadline(time.Now().Add(10 * shortTimeout))
			io.ReadFull(c, buf) // never respond; client deadline must fire
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := misbehavingServer(t, tc.respond)
			cn, err := dialConn(addr, shortTimeout)
			if err != nil {
				t.Fatal(err)
			}
			defer cn.close()
			done := make(chan error, 1)
			go func() {
				_, _, err := cn.call(&request{Method: methodDNPing}, nil, shortTimeout)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("call against misbehaving server succeeded")
				}
			case <-time.After(3 * shortTimeout):
				t.Fatal("client call hung past its deadline")
			}
		})
	}
}

// TestPartialChildFailureSurfacesAsError: a fold tree whose child
// address refuses connections errors out cleanly at the parent — the
// client sees a remote error and falls back, nothing hangs.
func TestPartialChildFailureSurfacesAsError(t *testing.T) {
	addr, healthy := robustServer(t)
	// Reserve a port that refuses connections by closing its listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	cn, err := dialConn(addr, shortTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.close()
	_, _, err = cn.call(&request{
		Method: methodDNPartial,
		Length: 64,
		Partial: &wirePartialNode{
			Machine:  0,
			Children: []wirePartialNode{{Machine: 1, Addr: deadAddr}},
		},
	}, nil, shortTimeout)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("dead child: got %v, want a RemoteError", err)
	}
	if err := healthy(); err != nil {
		t.Fatalf("daemon unhealthy after failed fold: %v", err)
	}
}
