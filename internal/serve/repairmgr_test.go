package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
	"repro/internal/testutil/leakcheck"
)

// startManagedSystem brings up a serving cluster with the repair
// control plane enabled on fast timings: detection settles in a few
// hundred milliseconds, so tests poll for outcomes instead of
// sleeping for fixed intervals.
func startManagedSystem(t *testing.T, mcfg repairmgr.Config) *System {
	t.Helper()
	// The manager's poll loop and the node servers must all be reaped
	// by sys.Close; the sentinel runs after the Close cleanup below.
	leakcheck.Cleanup(t)
	code := testCodecs(t)[0] // rs(4,2)
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	}, WithRepairManager(mcfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, deadline time.Duration, desc string, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", deadline, desc)
}

// preloadRaided writes and raids n files through the wire, returning
// their contents.
func preloadRaided(t *testing.T, sys *System, n int) map[string][]byte {
	t.Helper()
	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(3))
	out := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f-%d", i)
		data := make([]byte, 3*4096+511)
		rng.Read(data)
		if err := cl.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
		if err := cl.RaidFile(name); err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestManagedAutoRecoveryAfterKill is the headline acceptance
// property: after KillDataNode the cluster returns to full health with
// ZERO manual RunBlockFixer calls — detection, triage, and repair all
// happen inside the control plane.
func TestManagedAutoRecoveryAfterKill(t *testing.T) {
	sys := startManagedSystem(t, repairmgr.Config{
		SuspectAfter: 150 * time.Millisecond,
		GraceWindow:  150 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	})
	files := preloadRaided(t, sys, 3)

	locs, err := sys.Cluster().BlockLocations("f-0")
	if err != nil {
		t.Fatal(err)
	}
	victim := locs[0][0]
	if err := sys.KillDataNode(victim); err != nil {
		t.Fatal(err)
	}
	if sys.Cluster().Health().Healthy() {
		t.Fatal("kill did not degrade the cluster")
	}

	waitFor(t, 30*time.Second, "autonomous recovery to full health", func() bool {
		return sys.Cluster().Health().Healthy() && sys.RepairManager().QueueDepth() == 0
	})

	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.RepairStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairsDone == 0 || st.Unrecoverable != 0 {
		t.Fatalf("repair accounting: %+v", st)
	}
	// The liveness fields crossed the wire: a live Run loop has polled
	// (recently — the tick is 20ms) and the manager reports its age.
	if st.UptimeSeconds <= 0 || st.PollCount == 0 || st.SecondsSincePoll < 0 {
		t.Fatalf("control-loop liveness missing from repair.status: %+v", st)
	}
	if st.Nodes[victim].State != "dead" {
		t.Fatalf("victim detector state %q, want dead", st.Nodes[victim].State)
	}
	// Post-recovery reads are healthy (no degraded path) and
	// byte-identical.
	for name, want := range files {
		got, err := cl.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content differs after autonomous repair", name)
		}
	}
	if c := cl.Counters(); c.DegradedBlocks != 0 {
		t.Fatalf("%d degraded block reads after full recovery", c.DegradedBlocks)
	}
}

// TestManagedRestartWithinGraceCancelsRepair is the satellite
// regression: RestartDataNode re-registers with the heartbeat detector,
// and a kill-then-restart inside the grace window produces ZERO repair
// traffic — the pending repair is cancelled, not raced.
func TestManagedRestartWithinGraceCancelsRepair(t *testing.T) {
	grace := 2 * time.Second
	sys := startManagedSystem(t, repairmgr.Config{
		SuspectAfter: 150 * time.Millisecond,
		GraceWindow:  grace,
		PollInterval: 20 * time.Millisecond,
	})
	preloadRaided(t, sys, 2)
	locs, err := sys.Cluster().BlockLocations("f-0")
	if err != nil {
		t.Fatal(err)
	}
	victim := locs[0][0]
	bytesBefore := sys.Cluster().Network().CrossRackBytes()

	killedAt := time.Now()
	if err := sys.KillDataNode(victim); err != nil {
		t.Fatal(err)
	}
	// Observe the suspect state (the delayed-repair timer armed) before
	// restarting — proving the cancel happened, not that detection
	// never fired.
	waitFor(t, grace/2, "victim to turn suspect", func() bool {
		return sys.RepairManager().NodeState(victim) == repairmgr.StateSuspect
	})
	if err := sys.RestartDataNode(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, grace/2, "victim back to alive", func() bool {
		return sys.RepairManager().NodeState(victim) == repairmgr.StateAlive
	})

	// Sleep out the would-have-been death deadline plus margin, then
	// hold the assertion: no repairs, no queue, no cross-rack bytes.
	time.Sleep(time.Until(killedAt.Add(150*time.Millisecond + grace + 500*time.Millisecond)))
	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.RepairStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairsDone != 0 || st.QueueDepth != 0 {
		t.Fatalf("transient restart triggered repairs: %+v", st)
	}
	if st.AvoidedRepairs == 0 || st.AvoidedBytes == 0 {
		t.Fatalf("grace-window save not accounted: %+v", st)
	}
	if got := sys.Cluster().Network().CrossRackBytes() - bytesBefore; got != 0 {
		t.Fatalf("kill-then-restart inside the grace window moved %d repair bytes, want 0", got)
	}
	if st.Nodes[victim].State != "alive" {
		t.Fatalf("victim state %q, want alive", st.Nodes[victim].State)
	}
}

// TestManagedPriorityOrderingViaStatusRPC: with draining paused, kill
// two machines that share at least one stripe; on resume, the status
// RPC's completion log shows every multi-erasure repair finishing
// before any single-erasure one.
func TestManagedPriorityOrderingViaStatusRPC(t *testing.T) {
	sys := startManagedSystem(t, repairmgr.Config{
		SuspectAfter: 150 * time.Millisecond,
		GraceWindow:  150 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	})
	preloadRaided(t, sys, 8)
	c := sys.Cluster()

	// Find two machines sharing at least one stripe, with some stripes
	// on exactly one of them (the singles).
	m1, m2, shared := -1, -1, 0
	for a := 0; a < c.Machines() && m1 < 0; a++ {
		for b := a + 1; b < c.Machines(); b++ {
			inB := make(map[hdfs.StripeID]bool)
			for _, s := range c.MachineInventory(b).Stripes {
				inB[s] = true
			}
			n, only := 0, 0
			for _, s := range c.MachineInventory(a).Stripes {
				if inB[s] {
					n++
				} else {
					only++
				}
			}
			if n > 0 && only > 0 {
				m1, m2, shared = a, b, n
				break
			}
		}
	}
	if m1 < 0 {
		t.Skip("no machine pair shares a stripe under this seed")
	}

	sys.RepairManager().Pause()
	if err := sys.KillDataNode(m1); err != nil {
		t.Fatal(err)
	}
	if err := sys.KillDataNode(m2); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, 30*time.Second, "both deaths triaged into the paused queue", func() bool {
		st, err := cl.RepairStatus()
		return err == nil && st.QueueByErasures[2] == shared && st.RepairsDone == 0 &&
			st.Nodes[m1].State == "dead" && st.Nodes[m2].State == "dead"
	})
	sys.RepairManager().Resume()
	waitFor(t, 30*time.Second, "resumed drain to full health", func() bool {
		return c.Health().Healthy() && sys.RepairManager().QueueDepth() == 0
	})

	st, err := cl.RepairStatus()
	if err != nil {
		t.Fatal(err)
	}
	lastMulti, firstSingle := -1, -1
	multis := 0
	for _, f := range st.Completed {
		switch {
		case f.Erasures >= 2:
			multis++
			if f.Seq > lastMulti {
				lastMulti = f.Seq
			}
		case f.Erasures == 1 && (firstSingle < 0 || f.Seq < firstSingle):
			firstSingle = f.Seq
		}
	}
	if multis != shared || firstSingle < 0 {
		t.Fatalf("completion log: %d multis (want %d), firstSingle %d: %+v", multis, shared, firstSingle, st.Completed)
	}
	if lastMulti > firstSingle {
		t.Fatalf("priority violated: single seq %d completed before multi seq %d", firstSingle, lastMulti)
	}
}

// TestRepairStatusWithoutManager: the status RPC on an unmanaged
// cluster is a definitive remote error, and heartbeats are rejected.
func TestRepairStatusWithoutManager(t *testing.T) {
	sys := startTestSystem(t, testCodecs(t)[0])
	cl, err := Dial(sys.NameAddr(), sys.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RepairStatus(); err == nil {
		t.Fatal("status RPC succeeded without a manager")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("want RemoteError, got %T: %v", err, err)
	}
	if sys.RepairManager() != nil {
		t.Fatal("unmanaged system exposes a manager")
	}
}
