// The closed-loop load generator: N client workers drive a live
// serving cluster over TCP with a configurable read/write mix, a
// failure is injected mid-run, and what comes out is what an operator
// actually feels — client-visible throughput, p50/p99 latency, and the
// share of block reads that had to take the degraded path. Running the
// identical workload under RS, Piggybacked-RS, and LRC turns the
// paper's repair-traffic claim into a serving-latency comparison.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// LoadConfig parameterises one load-generator run. The zero value of
// every field selects a sensible default, so LoadConfig{} is runnable.
type LoadConfig struct {
	// Racks and MachinesPerRack shape the cluster; Racks defaults to
	// the codec's stripe width + 2 (one rack per block plus headroom).
	Racks, MachinesPerRack int
	// BlockSize is the block payload bound (default 64 KiB — kilobyte
	// blocks keep a localhost run fast while still striping).
	BlockSize int64
	// Replication is the pre-raid replica count (default 3).
	Replication int
	// Files and FileBytes shape the preloaded, erasure-coded working
	// set every reader hits (defaults 8 files x 4 blocks).
	Files     int
	FileBytes int64
	// Clients is the closed-loop worker count (default 4), each with
	// its own Client and connection pool.
	Clients int
	// Duration is the measured wall-clock run length (default 5s).
	Duration time.Duration
	// WriteFraction is the probability an operation is a write of a
	// fresh file rather than a read of the working set (default 0.1;
	// negative for a pure-read workload).
	WriteFraction float64
	// KillAfter kills a datanode holding a data block of the working
	// set this far into the run (default Duration/3; negative
	// disables).
	KillAfter time.Duration
	// PartialSumRepair makes every client serve degraded reads through
	// the distributed partial-sum pipeline (one folded block from the
	// helper tree) instead of the conventional helper fan-in, and
	// enables the same pipeline in the cluster's BlockFixer.
	//
	// Deprecated: prefer WithLoadPartialSumRepair(); the field keeps
	// working.
	PartialSumRepair bool
	// Shards partitions the namenode's metadata plane (see
	// hdfs.Config.Shards); 0 or 1 serves from a single Cluster. Prefer
	// WithLoadShards(n).
	Shards int
	// MetricsDump runs the system with telemetry enabled and attaches a
	// full registry snapshot (every RPC, repair, lock, and engine
	// instrument) to the LoadResult. Prefer WithLoadMetricsDump().
	MetricsDump bool
	// Seed drives placement, content, and the operation mix.
	Seed int64

	// ZipfS skews read popularity: > 1 draws the working-set file per
	// read from a Zipf(s) distribution with files[0] hottest — the
	// hot-data access shape a cache tier exists for. 0 (or <= 1) keeps
	// the uniform pick. Prefer WithLoadZipf(s).
	ZipfS float64
	// ThrottleDelay, when > 0, throttles the machine holding the first
	// preloaded file's first data block by this much per data RPC for
	// the whole run — a slow-but-alive node instead of (or as well as)
	// the kill. Prefer WithLoadThrottle(d).
	ThrottleDelay time.Duration
	// ClientCacheBytes gives every worker's client a block cache of
	// this budget (WithBlockCache). Prefer WithLoadClientCache(n).
	ClientCacheBytes int64
	// NodeCacheBytes fronts every datanode's store with a read cache of
	// this budget (hdfs.Config.NodeCacheBytes). Prefer
	// WithLoadNodeCache(n).
	NodeCacheBytes int64
	// Hedge arms hedged degraded reads on every worker's client with
	// HedgeDelay (<= 0 = adaptive). Prefer WithLoadHedge(d).
	Hedge      bool
	HedgeDelay time.Duration

	// normalized marks a config that already passed withDefaults, so
	// sentinel values (negative WriteFraction) are not re-defaulted.
	normalized bool
}

// withDefaults fills unset fields. Idempotent.
func (cfg LoadConfig) withDefaults(code ec.Code) LoadConfig {
	if cfg.normalized {
		return cfg
	}
	cfg.normalized = true
	if cfg.Racks == 0 {
		cfg.Racks = code.TotalShards() + 2
	}
	if cfg.MachinesPerRack == 0 {
		cfg.MachinesPerRack = 2
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64 << 10
	}
	if cfg.Replication == 0 {
		cfg.Replication = 3
	}
	if cfg.Files == 0 {
		cfg.Files = 8
	}
	if cfg.FileBytes == 0 {
		cfg.FileBytes = 4 * cfg.BlockSize
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 5 * time.Second
	}
	switch {
	case cfg.WriteFraction == 0:
		cfg.WriteFraction = 0.1
	case cfg.WriteFraction < 0:
		cfg.WriteFraction = 0
	}
	if cfg.KillAfter == 0 {
		cfg.KillAfter = cfg.Duration / 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// LoadResult is one codec's measured serving behaviour under load.
type LoadResult struct {
	Codec        string  `json:"codec"`
	DurationSecs float64 `json:"duration_secs"`
	Clients      int     `json:"clients"`

	Reads          int64   `json:"reads"`
	Writes         int64   `json:"writes"`
	Errors         int64   `json:"errors"`
	BlocksRead     int64   `json:"blocks_read"`
	DegradedBlocks int64   `json:"degraded_blocks"`
	DegradedShare  float64 `json:"degraded_share"`

	// PartialSumRepair records whether degraded reads ran through the
	// partial-sum pipeline; PartialSumBlocks counts the degraded reads
	// it actually served. DegradedBytesFetched is the payload clients
	// downloaded for reconstructions; per-block it is ~1 block under
	// partial-sum versus ~k conventionally — the paper's bottleneck
	// quantity, measured at the reconstructing node.
	PartialSumRepair      bool    `json:"partial_sum_repair"`
	PartialSumBlocks      int64   `json:"partial_sum_blocks"`
	DegradedBytesFetched  int64   `json:"degraded_bytes_fetched"`
	DegradedBytesPerBlock float64 `json:"degraded_bytes_per_block"`

	ReadP50Millis  float64 `json:"read_p50_ms"`
	ReadP99Millis  float64 `json:"read_p99_ms"`
	ReadP999Millis float64 `json:"read_p99_9_ms"`
	WriteP50Millis float64 `json:"write_p50_ms"`
	WriteP99Millis float64 `json:"write_p99_ms"`

	// Cache-tier and hedge observables (zero unless the run enabled
	// them). CacheHitRatio is hits/(hits+misses) across every worker's
	// client cache; HedgeWinRate is HedgeWins/HedgedReads. NodeCacheHits
	// and NodeCacheMisses are server-side (MetricsDump runs only — they
	// come off the system registry).
	CacheHits      int64   `json:"cache_hits,omitempty"`
	CacheMisses    int64   `json:"cache_misses,omitempty"`
	CacheHitRatio  float64 `json:"cache_hit_ratio,omitempty"`
	HedgedReads    int64   `json:"hedged_reads,omitempty"`
	HedgeWins      int64   `json:"hedge_wins,omitempty"`
	HedgeWinRate   float64 `json:"hedge_win_rate,omitempty"`
	NodeCacheHits  int64   `json:"node_cache_hits,omitempty"`
	NodeCacheMiss  int64   `json:"node_cache_misses,omitempty"`
	ThrottledNode  int     `json:"throttled_node"` // -1 when no throttle ran
	ThrottleMillis float64 `json:"throttle_ms,omitempty"`

	OpsPerSec          float64 `json:"ops_per_sec"`
	ThroughputMBPerSec float64 `json:"throughput_mb_per_sec"`

	Killed        bool    `json:"killed"`
	KillAfterSecs float64 `json:"kill_after_secs,omitempty"`
	KilledMachine int     `json:"killed_machine"` // -1 when no kill happened

	// Metrics is the system-side registry snapshot taken at the end of
	// the run (MetricsDump runs only): the server's view of the same
	// workload the client-side numbers above describe.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// fileContent generates a file's deterministic payload from the run
// seed and its name, so any reader can verify any read byte-for-byte.
func fileContent(seed int64, name string, size int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(crc32.ChecksumIEEE([]byte(name)))))
	//repolint:ignore framecheck size is the local bench config's file size, not a wire-decoded length
	buf := make([]byte, size)
	//repolint:ignore framecheck math/rand Read always returns len(p), nil; this generates the deterministic payload, it is not wire I/O
	rng.Read(buf)
	return buf
}

// RunLoad starts a serving cluster for the codec, preloads and raids a
// working set, drives the closed loop, and reports. The victim of the
// mid-run kill is the machine holding the first preloaded file's first
// data block, so its loss is guaranteed to turn working-set reads
// degraded.
func RunLoad(code ec.Code, cfg LoadConfig, opts ...LoadOption) (*LoadResult, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults(code)
	var sysOpts []Option
	if cfg.MetricsDump {
		sysOpts = append(sysOpts, WithTelemetry(TelemetryConfig{}))
	}
	if cfg.NodeCacheBytes > 0 {
		sysOpts = append(sysOpts, WithDataNodeCache(cfg.NodeCacheBytes))
	}
	sys, err := Start(hdfs.Config{
		Topology:         cluster.Topology{Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack},
		Code:             code,
		BlockSize:        cfg.BlockSize,
		Replication:      cfg.Replication,
		Seed:             cfg.Seed,
		PartialSumRepair: cfg.PartialSumRepair,
		Shards:           cfg.Shards,
	}, sysOpts...)
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	var clientOpts []ClientOption
	if cfg.PartialSumRepair {
		clientOpts = append(clientOpts, WithPartialSumRepair())
	}
	if cfg.ClientCacheBytes > 0 {
		clientOpts = append(clientOpts, WithBlockCache(cfg.ClientCacheBytes))
	}
	if cfg.Hedge {
		clientOpts = append(clientOpts, WithHedgedReads(cfg.HedgeDelay))
	}

	// Preload and raid the working set.
	setup, err := Dial(sys.NameAddr(), code)
	if err != nil {
		return nil, err
	}
	defer setup.Close()
	// Payloads are generated once: readers verify against this map on
	// every read, so steady-state verification costs a compare, not a
	// per-operation rng fill competing with the daemons for CPU.
	files := make([]string, cfg.Files)
	working := make(map[string][]byte, cfg.Files)
	for i := range files {
		files[i] = fmt.Sprintf("preload-%d", i)
		working[files[i]] = fileContent(cfg.Seed, files[i], cfg.FileBytes)
		if err := setup.WriteFile(files[i], working[files[i]]); err != nil {
			return nil, err
		}
		if err := setup.RaidFile(files[i]); err != nil {
			return nil, err
		}
	}

	// Victim selection: the single holder of preload-0's first block —
	// the machine every Zipf-hot read wants — shared by the kill and
	// the throttle (a cachebench run throttles instead of killing, so
	// the two never race on one machine in practice).
	victim := -1
	killArmed := cfg.KillAfter > 0 && cfg.KillAfter < cfg.Duration
	if killArmed || cfg.ThrottleDelay > 0 {
		_, blocks, err := sys.Cluster().FileBlocks(files[0])
		if err != nil {
			return nil, err
		}
		if len(blocks) > 0 && len(blocks[0].Locations) > 0 {
			victim = blocks[0].Locations[0]
		}
	}
	throttled := -1
	if cfg.ThrottleDelay > 0 && victim >= 0 {
		// The slow node is slow from the first operation: every worker's
		// latency tracker and hedge engine sees the same cluster for the
		// whole measured window.
		if err := sys.ThrottleDataNode(victim, cfg.ThrottleDelay); err != nil {
			return nil, err
		}
		throttled = victim
	}

	type workerStats struct {
		readMs, writeMs []float64
		errors          int64
		bytes           int64
		counters        Counters
	}
	workers := make([]workerStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	// killed records whether the kill actually landed, not merely that
	// the timer was armed: a run that ends early (or a failing
	// KillDataNode) must not report a kill that never happened.
	var killTimer *time.Timer
	var killed atomic.Bool
	if killArmed && victim >= 0 {
		killTimer = time.AfterFunc(cfg.KillAfter, func() {
			if err := sys.KillDataNode(victim); err == nil {
				killed.Store(true)
			}
		})
	}

	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workers[w]
			cl, err := Dial(sys.NameAddr(), code, clientOpts...)
			if err != nil {
				ws.errors++
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			// One payload per worker: written files are never read
			// back, so their content need not vary per write.
			wdata := fileContent(cfg.Seed+int64(w), "writer", cfg.FileBytes)
			// Zipf popularity: index 0 is drawn most often, so
			// files[0] — whose first block sits on the victim — is the
			// hottest key in the working set.
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 && len(files) > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(files)-1))
			}
			seq := 0
			for time.Now().Before(deadline) {
				if rng.Float64() < cfg.WriteFraction {
					name := fmt.Sprintf("w-%d-%d", w, seq)
					seq++
					t0 := time.Now()
					err := cl.WriteFile(name, wdata)
					if err != nil {
						ws.errors++
						continue
					}
					ws.writeMs = append(ws.writeMs, float64(time.Since(t0))/1e6)
					ws.bytes += int64(len(wdata))
					continue
				}
				name := files[rng.Intn(len(files))]
				if zipf != nil {
					name = files[zipf.Uint64()]
				}
				t0 := time.Now()
				data, err := cl.ReadFile(name)
				if err != nil {
					ws.errors++
					continue
				}
				if !bytes.Equal(data, working[name]) {
					ws.errors++ // corruption is an error, not a latency sample
					continue
				}
				ws.readMs = append(ws.readMs, float64(time.Since(t0))/1e6)
				ws.bytes += int64(len(data))
			}
			ws.counters = cl.Counters()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if killTimer != nil {
		killTimer.Stop()
	}

	res := &LoadResult{
		Codec:            code.Name(),
		DurationSecs:     elapsed.Seconds(),
		Clients:          cfg.Clients,
		PartialSumRepair: cfg.PartialSumRepair,
		Killed:           killed.Load(),
		KilledMachine:    -1,
		ThrottledNode:    throttled,
	}
	if throttled >= 0 {
		res.ThrottleMillis = float64(cfg.ThrottleDelay) / 1e6
	}
	if res.Killed {
		res.KillAfterSecs = cfg.KillAfter.Seconds()
		res.KilledMachine = victim
	}
	var readMs, writeMs []float64
	var totalBytes int64
	for i := range workers {
		ws := &workers[i]
		readMs = append(readMs, ws.readMs...)
		writeMs = append(writeMs, ws.writeMs...)
		res.Errors += ws.errors
		totalBytes += ws.bytes
		res.Reads += ws.counters.Reads
		res.Writes += ws.counters.Writes
		res.BlocksRead += ws.counters.BlocksRead
		res.DegradedBlocks += ws.counters.DegradedBlocks
		res.PartialSumBlocks += ws.counters.PartialSumBlocks
		res.DegradedBytesFetched += ws.counters.DegradedBytesFetched
		res.CacheHits += ws.counters.CacheHits
		res.CacheMisses += ws.counters.CacheMisses
		res.HedgedReads += ws.counters.HedgedReads
		res.HedgeWins += ws.counters.HedgeWins
	}
	if res.BlocksRead > 0 {
		res.DegradedShare = float64(res.DegradedBlocks) / float64(res.BlocksRead)
	}
	if res.DegradedBlocks > 0 {
		res.DegradedBytesPerBlock = float64(res.DegradedBytesFetched) / float64(res.DegradedBlocks)
	}
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitRatio = float64(res.CacheHits) / float64(lookups)
	}
	if res.HedgedReads > 0 {
		res.HedgeWinRate = float64(res.HedgeWins) / float64(res.HedgedReads)
	}
	res.ReadP50Millis = stats.Percentile(readMs, 50)
	res.ReadP99Millis = stats.Percentile(readMs, 99)
	res.ReadP999Millis = stats.Percentile(readMs, 99.9)
	res.WriteP50Millis = stats.Percentile(writeMs, 50)
	res.WriteP99Millis = stats.Percentile(writeMs, 99)
	if secs := elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.Reads+res.Writes) / secs
		res.ThroughputMBPerSec = float64(totalBytes) / 1e6 / secs
	}
	if reg := sys.Telemetry(); reg != nil {
		snap := reg.Snapshot()
		res.Metrics = &snap
		res.NodeCacheHits = snap.Counters["hdfs_node_cache_hits_total"]
		res.NodeCacheMiss = snap.Counters["hdfs_node_cache_misses_total"]
	}
	return res, nil
}

// BenchReport is the machine-readable BENCH_serve.json payload: the
// identical closed-loop workload, including the mid-run kill, measured
// under each codec.
type BenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	Clients         int     `json:"clients"`
	DurationSecs    float64 `json:"duration_secs"`
	Files           int     `json:"files"`
	FileBytes       int64   `json:"file_bytes"`
	BlockBytes      int64   `json:"block_bytes"`
	Racks           int     `json:"racks"`
	MachinesPerRack int     `json:"machines_per_rack"`
	Replication     int     `json:"replication"`
	WriteFraction   float64 `json:"write_fraction"`
	KillAfterSecs   float64 `json:"kill_after_secs"`

	Codecs []LoadResult `json:"codecs"`
}

// benchDefaults validates the codec lineup and normalises a shared
// bench configuration: racks default to the widest codec's stripe
// width + 2 so every codec sees the same fabric.
func benchDefaults(codecs []ec.Code, cfg LoadConfig) (LoadConfig, error) {
	if len(codecs) == 0 {
		return cfg, fmt.Errorf("serve: no codecs to bench")
	}
	width := 0
	for _, c := range codecs {
		if w := c.TotalShards(); w > width {
			width = w
		}
	}
	if cfg.Racks == 0 {
		cfg.Racks = width + 2
	}
	return cfg.withDefaults(codecs[0]), nil
}

// writeJSON writes v, pretty-printed, to path.
func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// RunBench runs the identical load against each codec in turn on one
// shared configuration (see benchDefaults).
func RunBench(codecs []ec.Code, cfg LoadConfig) (*BenchReport, error) {
	cfg, err := benchDefaults(codecs, cfg)
	if err != nil {
		return nil, err
	}
	report := &BenchReport{
		Benchmark:       "serve-loadgen",
		Seed:            cfg.Seed,
		Clients:         cfg.Clients,
		DurationSecs:    cfg.Duration.Seconds(),
		Files:           cfg.Files,
		FileBytes:       cfg.FileBytes,
		BlockBytes:      cfg.BlockSize,
		Racks:           cfg.Racks,
		MachinesPerRack: cfg.MachinesPerRack,
		Replication:     cfg.Replication,
		WriteFraction:   cfg.WriteFraction,
		KillAfterSecs:   cfg.KillAfter.Seconds(),
	}
	for _, code := range codecs {
		res, err := RunLoad(code, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: load under %s: %w", code.Name(), err)
		}
		report.Codecs = append(report.Codecs, *res)
	}
	return report, nil
}

// CheckErrors returns an error naming the first codec whose run saw
// client-visible errors — the acceptance gate both commands apply: a
// mid-run kill must be absorbed entirely by transparent degraded
// reads.
func (r *BenchReport) CheckErrors() error {
	for _, c := range r.Codecs {
		if c.Errors > 0 {
			return fmt.Errorf("serve: %s: %d client-visible errors (degraded reads must be transparent)", c.Codec, c.Errors)
		}
	}
	return nil
}

// PartialSumComparison is one codec's conventional-versus-partial-sum
// measurement on the identical workload.
type PartialSumComparison struct {
	Codec        string     `json:"codec"`
	Conventional LoadResult `json:"conventional"`
	PartialSum   LoadResult `json:"partial_sum"`

	// BytesPerDegradedBlock compares what the reconstructing client's
	// NIC received per degraded block: ~k blocks conventionally, ~1
	// folded block under partial-sum. BytesReductionFraction is
	// 1 - partial/conventional.
	ConventionalBytesPerBlock float64 `json:"conventional_bytes_per_degraded_block"`
	PartialBytesPerBlock      float64 `json:"partial_bytes_per_degraded_block"`
	BytesReductionFraction    float64 `json:"bytes_reduction_fraction"`
}

// PartialSumBenchReport is the machine-readable BENCH_partialsum.json
// payload: each codec serves the identical kill-mid-run workload twice,
// once with conventional degraded reads and once through the
// partial-sum pipeline.
type PartialSumBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	Clients       int     `json:"clients"`
	DurationSecs  float64 `json:"duration_secs"`
	Files         int     `json:"files"`
	FileBytes     int64   `json:"file_bytes"`
	BlockBytes    int64   `json:"block_bytes"`
	KillAfterSecs float64 `json:"kill_after_secs"`

	Codecs []PartialSumComparison `json:"codecs"`
}

// RunPartialSumBench runs each codec's load twice — conventional
// degraded reads, then partial-sum — on one shared configuration.
func RunPartialSumBench(codecs []ec.Code, cfg LoadConfig) (*PartialSumBenchReport, error) {
	cfg, err := benchDefaults(codecs, cfg)
	if err != nil {
		return nil, err
	}
	report := &PartialSumBenchReport{
		Benchmark:     "serve-partialsum",
		Seed:          cfg.Seed,
		Clients:       cfg.Clients,
		DurationSecs:  cfg.Duration.Seconds(),
		Files:         cfg.Files,
		FileBytes:     cfg.FileBytes,
		BlockBytes:    cfg.BlockSize,
		KillAfterSecs: cfg.KillAfter.Seconds(),
	}
	for _, code := range codecs {
		pair := PartialSumComparison{Codec: code.Name()}
		for _, partial := range []bool{false, true} {
			runCfg := cfg
			runCfg.PartialSumRepair = partial
			res, err := RunLoad(code, runCfg)
			if err != nil {
				return nil, fmt.Errorf("serve: load under %s (partial=%v): %w", code.Name(), partial, err)
			}
			if partial {
				pair.PartialSum = *res
			} else {
				pair.Conventional = *res
			}
		}
		pair.ConventionalBytesPerBlock = pair.Conventional.DegradedBytesPerBlock
		pair.PartialBytesPerBlock = pair.PartialSum.DegradedBytesPerBlock
		if pair.ConventionalBytesPerBlock > 0 {
			pair.BytesReductionFraction = 1 - pair.PartialBytesPerBlock/pair.ConventionalBytesPerBlock
		}
		report.Codecs = append(report.Codecs, pair)
	}
	return report, nil
}

// CheckErrors applies the zero-client-visible-errors gate to both runs
// of every codec.
func (r *PartialSumBenchReport) CheckErrors() error {
	for _, c := range r.Codecs {
		for _, res := range []*LoadResult{&c.Conventional, &c.PartialSum} {
			if res.Errors > 0 {
				return fmt.Errorf("serve: %s (partial=%v): %d client-visible errors", c.Codec, res.PartialSumRepair, res.Errors)
			}
		}
	}
	return nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *PartialSumBenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the per-codec comparison.
func (r *PartialSumBenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %10s %12s %10s\n",
		"codec", "mode", "degraded", "bytes/block", "rd p99")
	for _, c := range r.Codecs {
		for _, res := range []*LoadResult{&c.Conventional, &c.PartialSum} {
			mode := "fan-in"
			if res.PartialSumRepair {
				mode = "partial-sum"
			}
			fmt.Fprintf(&b, "%-22s %-12s %10d %12.0f %8.1fms\n",
				c.Codec, mode, res.DegradedBlocks, res.DegradedBytesPerBlock, res.ReadP99Millis)
		}
		fmt.Fprintf(&b, "%-22s %-12s %10s %11.1f%%\n", "", "reduction", "", 100*c.BytesReductionFraction)
	}
	return b.String()
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *BenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the report as the aligned table the commands
// print.
func (r *BenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %10s %10s %10s %10s %9s %7s\n",
		"codec", "reads", "writes", "rd p50", "rd p99", "wr p50", "MB/s", "degraded", "errors")
	for _, c := range r.Codecs {
		fmt.Fprintf(&b, "%-22s %8d %8d %8.1fms %8.1fms %8.1fms %10.1f %8.1f%% %7d\n",
			c.Codec, c.Reads, c.Writes, c.ReadP50Millis, c.ReadP99Millis, c.WriteP50Millis,
			c.ThroughputMBPerSec, 100*c.DegradedShare, c.Errors)
	}
	return b.String()
}
