// The cache/hedge benchmark: a Zipf-skewed, read-heavy workload over a
// cluster whose hottest machine is throttled — slow, not dead — run
// twice per codec on identical configuration, hedging off then on.
// Both runs keep the client and datanode caches hot, so the comparison
// isolates exactly what the hedge engine buys: the tail (p99/p99.9) a
// slow node inflicts when every read of its blocks must wait out the
// throttle, versus reconstruction racing it. The cache hit ratio and
// hedge win rate come along as the observables an operator would tune
// against.
package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ec"
)

// Cachebench defaults, chosen so a localhost single-core run separates
// signal from scheduler noise: the throttle is an order of magnitude
// above the hedge delay, which is itself far above a healthy replica
// RPC (microseconds).
const (
	defaultCacheBenchZipfS    = 1.01
	defaultCacheBenchThrottle = 150 * time.Millisecond
	defaultCacheBenchHedge    = 20 * time.Millisecond

	// The working set must overflow the client cache or the bench
	// measures nothing: with every block cached, no read ever reaches
	// the throttled machine and the tail the hedge engine exists to cut
	// never appears. 48 x 256KiB files against a 4MiB client cache keeps
	// the Zipf head resident (hit ratio comfortably over the 0.5 gate)
	// while the cold tail streams misses at the cluster — a few percent
	// of which land on the slow machine and set the unhedged p99.
	defaultCacheBenchFiles       = 48
	defaultCacheBenchClientBytes = int64(4) << 20
	defaultCacheBenchNodeBytes   = int64(8) << 20
)

// CacheComparison is one codec's unhedged-versus-hedged measurement on
// the identical Zipf + slow-node workload.
type CacheComparison struct {
	Codec    string     `json:"codec"`
	Unhedged LoadResult `json:"unhedged"`
	Hedged   LoadResult `json:"hedged"`

	// P99CutFraction is 1 - hedged/unhedged read p99 — the share of
	// the slow node's tail the hedge engine removed (analogously
	// P999CutFraction for p99.9).
	P99CutFraction  float64 `json:"p99_cut_fraction"`
	P999CutFraction float64 `json:"p99_9_cut_fraction"`
}

// CacheBenchReport is the machine-readable BENCH_cache.json payload.
type CacheBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	Clients          int     `json:"clients"`
	DurationSecs     float64 `json:"duration_secs"`
	Files            int     `json:"files"`
	FileBytes        int64   `json:"file_bytes"`
	BlockBytes       int64   `json:"block_bytes"`
	ZipfS            float64 `json:"zipf_s"`
	ThrottleMillis   float64 `json:"throttle_ms"`
	HedgeDelayMillis float64 `json:"hedge_delay_ms"`
	ClientCacheBytes int64   `json:"client_cache_bytes"`
	NodeCacheBytes   int64   `json:"node_cache_bytes"`

	Codecs []CacheComparison `json:"codecs"`
}

// cacheBenchDefaults normalises a shared cachebench configuration on
// top of benchDefaults: read-only Zipf workload, no kill, the hot
// machine throttled, both cache tiers on.
func cacheBenchDefaults(codecs []ec.Code, cfg LoadConfig) (LoadConfig, error) {
	if cfg.Files <= 0 {
		cfg.Files = defaultCacheBenchFiles
	}
	cfg, err := benchDefaults(codecs, cfg)
	if err != nil {
		return cfg, err
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = defaultCacheBenchZipfS
	}
	if cfg.ThrottleDelay <= 0 {
		cfg.ThrottleDelay = defaultCacheBenchThrottle
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = defaultCacheBenchHedge
	}
	if cfg.ClientCacheBytes <= 0 {
		cfg.ClientCacheBytes = defaultCacheBenchClientBytes
	}
	if cfg.NodeCacheBytes <= 0 {
		cfg.NodeCacheBytes = defaultCacheBenchNodeBytes
	}
	// The victim must stay alive and slow for the whole run, and the
	// workload must be pure reads — a write would dilute the read tail
	// the bench exists to measure.
	cfg.KillAfter = -1
	cfg.WriteFraction = 0
	return cfg, nil
}

// RunCacheBench measures each codec twice — hedging off, then on — on
// one shared Zipf + throttled-node configuration.
func RunCacheBench(codecs []ec.Code, cfg LoadConfig) (*CacheBenchReport, error) {
	cfg, err := cacheBenchDefaults(codecs, cfg)
	if err != nil {
		return nil, err
	}
	report := &CacheBenchReport{
		Benchmark:        "serve-cache",
		Seed:             cfg.Seed,
		Clients:          cfg.Clients,
		DurationSecs:     cfg.Duration.Seconds(),
		Files:            cfg.Files,
		FileBytes:        cfg.FileBytes,
		BlockBytes:       cfg.BlockSize,
		ZipfS:            cfg.ZipfS,
		ThrottleMillis:   float64(cfg.ThrottleDelay) / 1e6,
		HedgeDelayMillis: float64(cfg.HedgeDelay) / 1e6,
		ClientCacheBytes: cfg.ClientCacheBytes,
		NodeCacheBytes:   cfg.NodeCacheBytes,
	}
	for _, code := range codecs {
		pair := CacheComparison{Codec: code.Name()}
		for _, hedged := range []bool{false, true} {
			runCfg := cfg
			runCfg.Hedge = hedged
			res, err := RunLoad(code, runCfg)
			if err != nil {
				return nil, fmt.Errorf("serve: cachebench under %s (hedged=%v): %w", code.Name(), hedged, err)
			}
			if hedged {
				pair.Hedged = *res
			} else {
				pair.Unhedged = *res
			}
		}
		if pair.Unhedged.ReadP99Millis > 0 {
			pair.P99CutFraction = 1 - pair.Hedged.ReadP99Millis/pair.Unhedged.ReadP99Millis
		}
		if pair.Unhedged.ReadP999Millis > 0 {
			pair.P999CutFraction = 1 - pair.Hedged.ReadP999Millis/pair.Unhedged.ReadP999Millis
		}
		report.Codecs = append(report.Codecs, pair)
	}
	return report, nil
}

// CheckErrors applies the zero-client-visible-errors gate to both runs
// of every codec — a hedge or cache must never surface a wrong or
// failed read.
func (r *CacheBenchReport) CheckErrors() error {
	for _, c := range r.Codecs {
		for _, run := range []struct {
			mode string
			res  *LoadResult
		}{{"unhedged", &c.Unhedged}, {"hedged", &c.Hedged}} {
			if run.res.Errors > 0 {
				return fmt.Errorf("serve: %s (%s): %d client-visible errors", c.Codec, run.mode, run.res.Errors)
			}
		}
	}
	return nil
}

// CheckEffective gates the bench on the caching tier actually earning
// its keep: under the Zipf skew every run's client cache hit ratio
// must clear minHitRatio, and every hedged run must have fired hedges,
// won at least one race, and cut the read p99 versus its unhedged
// twin.
func (r *CacheBenchReport) CheckEffective(minHitRatio float64) error {
	for _, c := range r.Codecs {
		for _, run := range []struct {
			mode string
			res  *LoadResult
		}{{"unhedged", &c.Unhedged}, {"hedged", &c.Hedged}} {
			if run.res.CacheHitRatio < minHitRatio {
				return fmt.Errorf("serve: %s (%s): cache hit ratio %.3f below %.3f", c.Codec, run.mode, run.res.CacheHitRatio, minHitRatio)
			}
		}
		if c.Hedged.HedgedReads == 0 {
			return fmt.Errorf("serve: %s: the throttled node never triggered a hedge", c.Codec)
		}
		if c.Hedged.HedgeWins == 0 {
			return fmt.Errorf("serve: %s: reconstruction never beat the throttled primary", c.Codec)
		}
		if c.P99CutFraction <= 0 {
			return fmt.Errorf("serve: %s: hedging did not cut read p99 (%.1fms -> %.1fms)",
				c.Codec, c.Unhedged.ReadP99Millis, c.Hedged.ReadP99Millis)
		}
	}
	return nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *CacheBenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the per-codec comparison.
func (r *CacheBenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-9s %8s %9s %9s %8s %7s %6s %7s\n",
		"codec", "mode", "reads", "rd p99", "rd p99.9", "hit", "hedged", "wins", "errors")
	for _, c := range r.Codecs {
		for _, run := range []struct {
			mode string
			res  *LoadResult
		}{{"plain", &c.Unhedged}, {"hedged", &c.Hedged}} {
			res := run.res
			fmt.Fprintf(&b, "%-22s %-9s %8d %7.1fms %7.1fms %7.1f%% %7d %6d %7d\n",
				c.Codec, run.mode, res.Reads, res.ReadP99Millis, res.ReadP999Millis,
				100*res.CacheHitRatio, res.HedgedReads, res.HedgeWins, res.Errors)
		}
		fmt.Fprintf(&b, "%-22s %-9s %8s %8.1f%% %8.1f%%  (p99 / p99.9 cut)\n",
			"", "cut", "", 100*c.P99CutFraction, 100*c.P999CutFraction)
	}
	return b.String()
}
