// Functional options for the serve layer's config structs. The struct
// fields keep working (they are the underlying representation); options
// compose at call sites without zero-value ambiguity:
//
//	res, err := serve.RunLoad(code, serve.LoadConfig{},
//		serve.WithLoadShards(4), serve.WithLoadClients(8))
package serve

import "time"

// LoadOption mutates a LoadConfig before defaulting.
type LoadOption func(*LoadConfig)

// WithLoadShards serves the workload from a metadata plane of n shards
// (see hdfs.Config.Shards). Replaces setting LoadConfig.Shards.
func WithLoadShards(n int) LoadOption {
	return func(c *LoadConfig) { c.Shards = n }
}

// WithLoadClients sets the closed-loop worker count.
func WithLoadClients(n int) LoadOption {
	return func(c *LoadConfig) { c.Clients = n }
}

// WithLoadDuration sets the measured run length.
func WithLoadDuration(d time.Duration) LoadOption {
	return func(c *LoadConfig) { c.Duration = d }
}

// WithLoadWriteFraction sets the write probability (negative for a
// pure-read workload).
func WithLoadWriteFraction(f float64) LoadOption {
	return func(c *LoadConfig) { c.WriteFraction = f }
}

// WithLoadSeed sets the placement/content/mix seed.
func WithLoadSeed(seed int64) LoadOption {
	return func(c *LoadConfig) { c.Seed = seed }
}

// WithLoadPartialSumRepair serves degraded reads through the
// partial-sum pipeline. Replaces the deprecated
// LoadConfig.PartialSumRepair field.
func WithLoadPartialSumRepair() LoadOption {
	return func(c *LoadConfig) { c.PartialSumRepair = true }
}

// WithLoadKillAfter arms the mid-run datanode kill (negative
// disables).
func WithLoadKillAfter(d time.Duration) LoadOption {
	return func(c *LoadConfig) { c.KillAfter = d }
}

// WithLoadMetricsDump runs the system with telemetry enabled and
// attaches the end-of-run registry snapshot to the LoadResult (and so
// to the BENCH_serve.json payload).
func WithLoadMetricsDump() LoadOption {
	return func(c *LoadConfig) { c.MetricsDump = true }
}

// WithLoadZipf skews read popularity by a Zipf(s) draw over the
// working set (s > 1; files[0] hottest). See LoadConfig.ZipfS.
func WithLoadZipf(s float64) LoadOption {
	return func(c *LoadConfig) { c.ZipfS = s }
}

// WithLoadThrottle throttles the machine holding the hottest file's
// first block by d per data RPC for the whole run — the slow-but-alive
// failure mode, as opposed to WithLoadKillAfter's death.
func WithLoadThrottle(d time.Duration) LoadOption {
	return func(c *LoadConfig) { c.ThrottleDelay = d }
}

// WithLoadClientCache gives every worker's client a block cache of n
// bytes (see WithBlockCache).
func WithLoadClientCache(n int64) LoadOption {
	return func(c *LoadConfig) { c.ClientCacheBytes = n }
}

// WithLoadNodeCache fronts every datanode's store with an n-byte read
// cache (see hdfs.WithNodeCacheBytes).
func WithLoadNodeCache(n int64) LoadOption {
	return func(c *LoadConfig) { c.NodeCacheBytes = n }
}

// WithLoadHedge arms hedged degraded reads on every worker's client
// with the given delay (<= 0 = adaptive; see WithHedgedReads).
func WithLoadHedge(delay time.Duration) LoadOption {
	return func(c *LoadConfig) {
		c.Hedge = true
		c.HedgeDelay = delay
	}
}

// RepairMgrBenchOption mutates a RepairMgrBenchConfig before
// defaulting.
type RepairMgrBenchOption func(*RepairMgrBenchConfig)

// WithBenchThrottle sets scenario 3's token-bucket cap in bytes/sec.
func WithBenchThrottle(bytesPerSec float64) RepairMgrBenchOption {
	return func(c *RepairMgrBenchConfig) { c.ThrottleBytesPerSec = bytesPerSec }
}

// WithBenchSeed sets the placement/content seed.
func WithBenchSeed(seed int64) RepairMgrBenchOption {
	return func(c *RepairMgrBenchConfig) { c.Seed = seed }
}

// WithBenchTraceDays shapes scenario 4's failure-trace replay.
func WithBenchTraceDays(days int) RepairMgrBenchOption {
	return func(c *RepairMgrBenchConfig) { c.TraceDays = days }
}
