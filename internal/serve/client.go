// The serving-layer client. Reads are replica-spread and self-healing:
// each block read rotates across live replicas, and when none answers
// — the holder died, or died mid-transfer — the client fetches the
// stripe layout from the namenode, downloads the surviving helper
// ranges of the codec's repair plan from their datanodes, and decodes
// the missing block locally (a degraded read). Callers see bytes,
// never failures, as long as the stripe stays recoverable; the
// Counters expose how many block reads had to take the degraded path.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/ec"
	"repro/internal/engine"
	"repro/internal/hdfs"
	"repro/internal/telemetry"
)

// defaultTimeout bounds one RPC round trip. Localhost RPCs answer in
// microseconds; the bound only matters when a daemon is wedged.
const defaultTimeout = 10 * time.Second

// readAttempts bounds how many times a block read refreshes metadata
// and retries after transport failures before giving up.
const readAttempts = 4

// perNodePartialBudget is the extra deadline budget granted per helper
// of a partial-sum subtree: one dn.partial RPC covers its whole
// subtree's sequential fold, so its timeout must grow with the tree.
const perNodePartialBudget = 500 * time.Millisecond

// partialTimeout returns the deadline for a dn.partial call over a
// subtree of n nodes.
func partialTimeout(n int) time.Duration {
	return defaultTimeout + time.Duration(n)*perNodePartialBudget
}

// conn is one pooled client connection: requests on it are serialised
// (the protocol is strict request/response lockstep).
type conn struct {
	mu sync.Mutex
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialConn(addr string, timeout time.Duration) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
}

// call performs one RPC round trip. A transport failure leaves the
// connection unusable; callers drop it from their pool. A RemoteError
// means the far side answered and said no.
//
// The deadline is refreshed per PHASE of the exchange, not set once
// for the whole call: the write phase gets a fresh budget, and the
// read phase gets another one armed only after the request is fully
// flushed. A single up-front deadline silently shrinks the read budget
// by however long the write took, and — the regression that motivated
// this — any deadline left armed on the pooled connection after a call
// poisons the NEXT exchange on a client held open past its timeout.
// Both deadlines are disarmed on success so an idle pooled connection
// carries no ticking clock.
func (c *conn) call(req *request, payload []byte, timeout time.Duration) (*response, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.nc.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return nil, nil, err
	}
	if err := writeFrame(c.bw, req, payload); err != nil {
		return nil, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, nil, err
	}
	if err := c.nc.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, nil, err
	}
	var resp response
	out, err := readFrame(c.br, &resp)
	if err != nil {
		return nil, nil, err
	}
	if err := c.nc.SetDeadline(time.Time{}); err != nil {
		return nil, nil, err
	}
	if !resp.OK {
		return nil, nil, &RemoteError{Msg: resp.Err}
	}
	return &resp, out, nil
}

func (c *conn) close() { c.nc.Close() }

// isCorruptReplicaErr reports whether a datanode RPC failed because
// the replica's stored bytes failed checksum verification. The typed
// sentinel does not survive the wire, so the remote message carries
// the signal.
func isCorruptReplicaErr(err error) bool {
	var remote *RemoteError
	return errors.As(err, &remote) && strings.Contains(remote.Msg, hdfs.ErrCorruptReplica.Error())
}

// Counters are a client's cumulative operation counts. DegradedBlocks
// counts block reads that were served by reconstruction rather than a
// replica; DegradedBlocks/BlocksRead is the degraded-read share.
// DegradedBytesFetched is the payload the client downloaded to serve
// those reconstructions — the paper's bottleneck quantity. A
// conventional degraded read pulls the whole repair plan (~k blocks);
// a partial-sum one pulls a single folded block.
type Counters struct {
	Reads                int64 // whole-file reads completed
	Writes               int64 // whole-file writes completed
	BlocksRead           int64 // block reads completed (healthy + degraded + cache hits)
	DegradedBlocks       int64 // block reads served via reconstruction
	PartialSumBlocks     int64 // degraded reads served by the partial-sum pipeline
	DegradedBytesFetched int64 // bytes received at this client for reconstructions
	CorruptReplicas      int64 // replica reads refused by a datanode's checksum verification
	CacheHits            int64 // block reads served from the client block cache (WithBlockCache)
	CacheMisses          int64 // block reads that consulted the cache and went to the network
	HedgedReads          int64 // reads whose hedge timer fired a parallel reconstruction
	HedgeWins            int64 // hedged reads where reconstruction beat the pending primary
}

// ClientOption configures a Client at dial time.
type ClientOption func(*Client)

// WithPartialSumRepair makes the client's degraded reads use the
// distributed partial-sum pipeline: instead of downloading every helper
// range of the repair plan, the client ships the codec's linear repair
// plan as a rack-aware fold tree to the helpers and downloads ONE
// folded block-sized buffer from the root aggregator. Any failure along
// the tree falls back to the conventional fan-in transparently.
func WithPartialSumRepair() ClientOption {
	return func(c *Client) { c.partialSum = true }
}

// WithTimeout overrides the per-exchange RPC deadline (default 10s).
// The budget applies to each phase of each request/response exchange
// separately — a client is never penalised for its own lifetime, only
// a single wedged write or read can trip it.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithBlockCache gives the client a sharded LRU block cache of n
// bytes: block reads consult it before any RPC and fill it on every
// successful read — healthy, degraded, and partial-sum alike. Keys are
// block ids, which is sound because stored blocks are immutable
// (rewrites allocate fresh ids); n <= 0 leaves caching off.
func WithBlockCache(n int64) ClientOption {
	return func(c *Client) { c.blockCache = cache.New(n, cache.DefaultShards) }
}

// WithHedgedReads arms hedged degraded reads for striped blocks: when
// the replica chain hasn't answered within delay, the client launches
// a stripe reconstruction in parallel and returns whichever path
// finishes first (Counters.HedgedReads / HedgeWins count the races and
// the reconstruction wins). delay <= 0 derives the delay adaptively
// from the client's observed latency quantiles — a multiple of the
// recent p95, so hedges fire on outliers, not jitter.
func WithHedgedReads(delay time.Duration) ClientOption {
	return func(c *Client) {
		c.hedge = true
		c.hedgeDelay = delay
	}
}

// WithTraceSampling samples every Nth degraded read (1 = every one)
// for distributed tracing: the sampled read mints a trace context,
// propagates it on every RPC it issues, and records a root span
// locally. Collect the assembled trace with CollectTrace after reading
// LastTraceID.
func WithTraceSampling(every int) ClientOption {
	return func(c *Client) {
		if every > 0 {
			c.sampleEvery = int64(every)
			c.spans = telemetry.NewSpanStore(0)
		}
	}
}

// Client talks to a serving cluster. It is safe for concurrent use;
// workloads wanting parallel in-flight requests should prefer one
// Client per worker, since requests on one pooled connection
// serialise.
type Client struct {
	code       ec.Code
	nameAddr   string
	timeout    time.Duration
	partialSum bool

	mu      sync.Mutex
	name    *conn
	dns     map[string]*conn
	addrs   []string // machine id → datanode address ("" = down)
	perRack int      // machines per rack, from the handshake

	rr atomic.Uint64 // rotation among latency-tied replicas

	// Read-path accelerators: the optional block cache (nil = off), the
	// always-on per-datanode latency tracker feeding replica ordering,
	// and the hedged-read arm.
	blockCache *cache.Cache
	lat        *latencyTracker
	hedge      bool
	hedgeDelay time.Duration // <= 0: adaptive (see hedgeDelayNow)

	// Operation counters live on a per-client registry, so Counters()
	// reads and the hot paths that bump them are both atomic — no
	// torn reads under -race — and a snapshot of every client metric
	// is one Registry.Snapshot away.
	reg             *telemetry.Registry
	cReads          *telemetry.Counter
	cWrites         *telemetry.Counter
	cBlocksRead     *telemetry.Counter
	cDegradedBlocks *telemetry.Counter
	cPartialBlocks  *telemetry.Counter
	cDegradedBytes  *telemetry.Counter
	cCorruptReps    *telemetry.Counter
	cCacheHits      *telemetry.Counter
	cCacheMisses    *telemetry.Counter
	cHedgedReads    *telemetry.Counter
	cHedgeWins      *telemetry.Counter

	// Trace sampling state (WithTraceSampling): every Nth degraded
	// read propagates a trace context and records a client root span.
	sampleEvery int64
	degradedSeq atomic.Int64
	lastTrace   atomic.Uint64
	spans       *telemetry.SpanStore
}

// Dial connects to the namenode and fetches the cluster handshake.
// code must match the cluster's codec (the handshake enforces it by
// name): the client decodes degraded reads locally.
func Dial(nameAddr string, code ec.Code, opts ...ClientOption) (*Client, error) {
	c := &Client{
		code:     code,
		nameAddr: nameAddr,
		timeout:  defaultTimeout,
		dns:      make(map[string]*conn),
		reg:      telemetry.NewRegistry(),
		lat:      newLatencyTracker(),
	}
	c.cReads = c.reg.Counter("client_reads_total")
	c.cWrites = c.reg.Counter("client_writes_total")
	c.cBlocksRead = c.reg.Counter("client_blocks_read_total")
	c.cDegradedBlocks = c.reg.Counter("client_degraded_blocks_total")
	c.cPartialBlocks = c.reg.Counter("client_partialsum_blocks_total")
	c.cDegradedBytes = c.reg.Counter("client_degraded_bytes_total")
	c.cCorruptReps = c.reg.Counter("client_corrupt_replicas_total")
	c.cCacheHits = c.reg.Counter("client_cache_hits_total")
	c.cCacheMisses = c.reg.Counter("client_cache_misses_total")
	c.cHedgedReads = c.reg.Counter("client_hedged_reads_total")
	c.cHedgeWins = c.reg.Counter("client_hedge_wins_total")
	for _, opt := range opts {
		opt(c)
	}
	resp, err := c.nameCall(&request{Method: methodInfo}, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", nameAddr, err)
	}
	if resp.Codec != code.Name() {
		return nil, fmt.Errorf("serve: cluster runs %s, client built for %s", resp.Codec, code.Name())
	}
	c.mu.Lock()
	c.addrs = resp.DataNodes
	c.perRack = resp.MachinesPerRack
	c.mu.Unlock()
	return c, nil
}

// Counters returns the cumulative operation counts. Each field is an
// atomic read of the backing registry counter, so calling concurrently
// with in-flight operations is race-free (values may trail operations
// completing mid-snapshot, as any concurrent counter read does).
func (c *Client) Counters() Counters {
	return Counters{
		Reads:                c.cReads.Value(),
		Writes:               c.cWrites.Value(),
		BlocksRead:           c.cBlocksRead.Value(),
		DegradedBlocks:       c.cDegradedBlocks.Value(),
		PartialSumBlocks:     c.cPartialBlocks.Value(),
		DegradedBytesFetched: c.cDegradedBytes.Value(),
		CorruptReplicas:      c.cCorruptReps.Value(),
		CacheHits:            c.cCacheHits.Value(),
		CacheMisses:          c.cCacheMisses.Value(),
		HedgedReads:          c.cHedgedReads.Value(),
		HedgeWins:            c.cHedgeWins.Value(),
	}
}

// Telemetry exposes the client's metrics registry — the same counters
// Counters() reports, in mergeable snapshot form.
func (c *Client) Telemetry() *telemetry.Registry { return c.reg }

// LastTraceID returns the trace id of the most recent sampled degraded
// read (0 when tracing is off or nothing sampled yet).
func (c *Client) LastTraceID() uint64 { return c.lastTrace.Load() }

// Close severs every pooled connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.name != nil {
		c.name.close()
		c.name = nil
	}
	for _, cn := range c.dns {
		cn.close()
	}
	c.dns = make(map[string]*conn)
	return nil
}

// nameCall performs one namenode RPC, redialling once if the pooled
// connection has gone stale.
func (c *Client) nameCall(req *request, payload []byte) (*response, error) {
	resp, _, err := c.nameCallPayload(req, payload)
	return resp, err
}

func (c *Client) nameCallPayload(req *request, payload []byte) (*response, []byte, error) {
	for attempt := 0; attempt < 2; attempt++ {
		c.mu.Lock()
		cn := c.name
		c.mu.Unlock()
		if cn == nil {
			fresh, err := dialConn(c.nameAddr, c.timeout)
			if err != nil {
				return nil, nil, err
			}
			c.mu.Lock()
			if c.name == nil {
				c.name = fresh
				cn = fresh
			} else {
				cn = c.name
				fresh.close()
			}
			c.mu.Unlock()
		}
		resp, out, err := cn.call(req, payload, c.timeout)
		if err == nil {
			return resp, out, nil
		}
		if _, remote := err.(*RemoteError); remote {
			return nil, nil, err
		}
		// Transport failure: drop the pooled connection and redial.
		c.mu.Lock()
		if c.name == cn {
			c.name = nil
		}
		c.mu.Unlock()
		cn.close()
		if attempt == 1 {
			return nil, nil, err
		}
	}
	panic("unreachable")
}

// refreshAddrs re-fetches the datanode address table — needed after a
// daemon dies (its address empties) or restarts (fresh port).
func (c *Client) refreshAddrs() error {
	resp, err := c.nameCall(&request{Method: methodInfo}, nil)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.addrs = resp.DataNodes
	c.perRack = resp.MachinesPerRack
	c.mu.Unlock()
	return nil
}

// dnCall performs one RPC against the given machine's datanode.
func (c *Client) dnCall(machine int, req *request) ([]byte, error) {
	return c.dnCallTimeout(machine, req, c.timeout)
}

// dnCallTimeout is dnCall with an explicit deadline — partial-sum
// calls scale theirs with the fold tree's size.
func (c *Client) dnCallTimeout(machine int, req *request, timeout time.Duration) ([]byte, error) {
	_, out, err := c.dnCallFull(machine, req, timeout)
	return out, err
}

// dnCallFull also surfaces the response header — debug.trace answers
// in the header's span list, not the payload.
func (c *Client) dnCallFull(machine int, req *request, timeout time.Duration) (*response, []byte, error) {
	c.mu.Lock()
	var addr string
	if machine >= 0 && machine < len(c.addrs) {
		addr = c.addrs[machine]
	}
	cn := c.dns[addr]
	c.mu.Unlock()
	if addr == "" {
		return nil, nil, fmt.Errorf("serve: datanode %d has no address (down?)", machine)
	}
	if cn == nil {
		fresh, err := dialConn(addr, timeout)
		if err != nil {
			return nil, nil, err
		}
		c.mu.Lock()
		if existing := c.dns[addr]; existing != nil {
			cn = existing
			fresh.close()
		} else {
			c.dns[addr] = fresh
			cn = fresh
		}
		c.mu.Unlock()
	}
	start := time.Now()
	resp, out, err := cn.call(req, nil, timeout)
	if err != nil {
		if _, remote := err.(*RemoteError); !remote {
			// A transport failure took this long to surface — that IS
			// the machine's observed latency; feeding it deprioritises
			// the node for subsequent reads. Remote errors are excluded:
			// a datanode refusing a corrupt replica answers fast, and
			// that speed says nothing about serving real payloads.
			c.lat.observe(machine, time.Since(start))
			c.mu.Lock()
			if c.dns[addr] == cn {
				delete(c.dns, addr)
			}
			c.mu.Unlock()
			cn.close()
		}
		return nil, nil, err
	}
	c.lat.observe(machine, time.Since(start))
	return resp, out, nil
}

// dnRead fetches one byte range of one block from a machine. trace,
// when non-nil, rides the request so the datanode's span parents under
// the caller's.
func (c *Client) dnRead(machine int, block, offset, length int64, trace *telemetry.TraceContext) ([]byte, error) {
	return c.dnCall(machine, &request{Method: methodDNRead, Block: block, Offset: offset, Length: length, Trace: trace})
}

// WriteFile stores data as a new file.
func (c *Client) WriteFile(name string, data []byte) error {
	if _, err := c.nameCall(&request{Method: methodWrite, Name: name}, data); err != nil {
		return err
	}
	c.cWrites.Inc()
	return nil
}

// RaidFile erasure-codes a file in place.
func (c *Client) RaidFile(name string) error {
	_, err := c.nameCall(&request{Method: methodRaid, Name: name}, nil)
	return err
}

// FixReport summarises a block-fixer pass driven over the wire.
type FixReport struct {
	ScannedBlocks   int
	RepairedStriped int
	ReReplicated    int
	Unrecoverable   int
}

// RunBlockFixer drives one fixer pass on the namenode.
func (c *Client) RunBlockFixer() (FixReport, error) {
	resp, err := c.nameCall(&request{Method: methodFixer}, nil)
	if err != nil {
		return FixReport{}, err
	}
	if resp.Fix == nil {
		return FixReport{}, fmt.Errorf("serve: fixer reply missing report")
	}
	return FixReport{
		ScannedBlocks:   resp.Fix.ScannedBlocks,
		RepairedStriped: resp.Fix.RepairedStriped,
		ReReplicated:    resp.Fix.ReReplicated,
		Unrecoverable:   resp.Fix.Unrecoverable,
	}, nil
}

// FailMachine fails a machine (and its daemon) through the namenode.
func (c *Client) FailMachine(machine int) error {
	_, err := c.nameCall(&request{Method: methodFail, Machine: machine}, nil)
	return err
}

// RestoreMachine restores a machine (and its daemon) through the
// namenode.
func (c *Client) RestoreMachine(machine int) error {
	_, err := c.nameCall(&request{Method: methodRestore, Machine: machine}, nil)
	return err
}

// RepairStatus is the client-visible snapshot of the repair control
// plane (see the wire struct for field semantics).
type RepairStatus struct {
	Nodes           []RepairNodeState
	QueueDepth      int
	QueueByErasures map[int]int
	Paused          bool
	DegradedStripes int
	DegradedBlocks  int
	RepairsDone     int
	RepairedBytes   int64
	Unrecoverable   int
	AvoidedRepairs  int
	AvoidedBytes    int64
	LostBlocks      int
	ScrubSlices     int
	ScrubReplicas   int
	ScrubCorrupt    int
	ThrottleBps     float64
	Completed       []CompletedFix
	// UptimeSeconds / SecondsSincePoll (-1 = never polled) / PollCount
	// distinguish a stalled control loop from an idle one.
	UptimeSeconds    float64
	SecondsSincePoll float64
	PollCount        int64
}

// RepairNodeState is one machine's failure-detector state.
type RepairNodeState struct {
	Machine int
	State   string // alive | suspect | dead
}

// CompletedFix is one completed repair, in completion order — the
// observable record that priority ordering actually held.
type CompletedFix struct {
	Seq           int
	Kind          string // stripe | replicated
	Stripe        int64
	Block         int64
	Erasures      int
	Bytes         int64
	WaitSeconds   float64
	Unrecoverable bool
}

// RepairStatus fetches the control plane's status from the namenode.
// It errors when the cluster runs without a repair manager.
func (c *Client) RepairStatus() (*RepairStatus, error) {
	resp, err := c.nameCall(&request{Method: methodRepairStatus}, nil)
	if err != nil {
		return nil, err
	}
	if resp.Repair == nil {
		return nil, fmt.Errorf("serve: repair status reply missing payload")
	}
	w := resp.Repair
	st := &RepairStatus{
		QueueDepth:      w.QueueDepth,
		QueueByErasures: make(map[int]int, len(w.QueueByErasures)),
		Paused:          w.Paused,
		DegradedStripes: w.DegradedStripes,
		DegradedBlocks:  w.DegradedBlocks,
		RepairsDone:     w.RepairsDone,
		RepairedBytes:   w.RepairedBytes,
		Unrecoverable:   w.Unrecoverable,
		AvoidedRepairs:  w.AvoidedRepairs,
		AvoidedBytes:    w.AvoidedBytes,
		LostBlocks:      w.LostBlocks,
		ScrubSlices:     w.ScrubSlices,
		ScrubReplicas:   w.ScrubReplicas,
		ScrubCorrupt:    w.ScrubCorrupt,
		ThrottleBps:     w.ThrottleBps,

		UptimeSeconds:    w.UptimeSeconds,
		SecondsSincePoll: w.SecondsSincePoll,
		PollCount:        w.PollCount,
	}
	for _, n := range w.Nodes {
		st.Nodes = append(st.Nodes, RepairNodeState{Machine: n.Machine, State: n.State})
	}
	for _, d := range w.QueueByErasures {
		st.QueueByErasures[d.Erasures] = d.Count
	}
	for _, f := range w.Completed {
		st.Completed = append(st.Completed, CompletedFix{
			Seq:           f.Seq,
			Kind:          f.Kind,
			Stripe:        f.Stripe,
			Block:         f.Block,
			Erasures:      f.Erasures,
			Bytes:         f.Bytes,
			WaitSeconds:   f.WaitSeconds,
			Unrecoverable: f.Unrecoverable,
		})
	}
	return st, nil
}

// CollectTrace assembles one distributed trace: the client's local
// root span plus the spans buffered at the namenode and every
// reachable datanode, filtered to traceID. Daemons that are down (or
// run without telemetry) are skipped — their spans are simply absent,
// which is what a trace of a system with failures looks like. The
// caller builds the tree with telemetry.BuildTree.
func (c *Client) CollectTrace(traceID uint64) ([]telemetry.Span, error) {
	if traceID == 0 {
		return nil, errors.New("serve: trace id 0 names no trace")
	}
	spans := c.spans.Trace(traceID)
	if resp, err := c.nameCall(&request{Method: methodDebugTrace, TraceID: traceID}, nil); err == nil {
		spans = append(spans, resp.Spans...)
	}
	c.mu.Lock()
	addrs := append([]string(nil), c.addrs...)
	c.mu.Unlock()
	for m, addr := range addrs {
		if addr == "" {
			continue
		}
		resp, _, err := c.dnCallFull(m, &request{Method: methodDebugTrace, TraceID: traceID}, c.timeout)
		if err != nil {
			continue
		}
		spans = append(spans, resp.Spans...)
	}
	return spans, nil
}

// fileBlocks fetches the file's size and block table.
func (c *Client) fileBlocks(name string) (int64, []wireBlock, error) {
	resp, err := c.nameCall(&request{Method: methodBlocks, Name: name}, nil)
	if err != nil {
		return 0, nil, err
	}
	return resp.Size, resp.Blocks, nil
}

// ReadFile returns the file's contents. Block reads rotate across
// replicas; blocks with no answering replica are transparently
// reconstructed from their stripe (degraded read), with helper ranges
// fetched over the wire.
func (c *Client) ReadFile(name string) ([]byte, error) {
	size, blocks, err := c.fileBlocks(name)
	if err != nil {
		return nil, err
	}
	// The size is namenode-reported wire data; bound it before it
	// sizes the assembly buffer.
	if size < 0 || size > maxPayloadBytes {
		return nil, fmt.Errorf("serve: file %s reports size %d out of bounds", name, size)
	}
	out := make([]byte, 0, size)
	for i := range blocks {
		data, err := c.readBlock(name, i, blocks[i])
		if err != nil {
			return nil, fmt.Errorf("serve: read %s block %d: %w", name, i, err)
		}
		out = append(out, data...)
	}
	c.cReads.Inc()
	return out, nil
}

// cacheFill records a successfully read block in the client cache
// (no-op without WithBlockCache). Every fill is a full block keyed by
// its immutable id, so a hit can be returned without consulting
// metadata.
func (c *Client) cacheFill(b wireBlock, data []byte) {
	c.blockCache.Put(uint64(b.ID), data)
}

// readBlock reads one block, retrying with refreshed metadata when
// replicas or helpers die mid-flight. The block cache is consulted
// before any RPC; every successful read — healthy, hedged, degraded —
// fills it.
func (c *Client) readBlock(name string, index int, b wireBlock) ([]byte, error) {
	if c.blockCache != nil {
		if data, ok := c.blockCache.Get(uint64(b.ID)); ok {
			c.cCacheHits.Inc()
			c.cBlocksRead.Inc()
			return data, nil
		}
		c.cCacheMisses.Inc()
	}
	var lastErr error
	for attempt := 0; attempt < readAttempts; attempt++ {
		if attempt > 0 {
			// Metadata may be stale: the holder set changed, daemons
			// moved ports, or the block got fixed to a new machine.
			if err := c.refreshAddrs(); err != nil {
				return nil, err
			}
			_, blocks, err := c.fileBlocks(name)
			if err != nil {
				return nil, err
			}
			if index >= len(blocks) {
				return nil, fmt.Errorf("serve: block index %d vanished", index)
			}
			b = blocks[index]
		}

		// Hedged path: race the replica chain against a delayed stripe
		// reconstruction (see hedge.go). It subsumes both branches
		// below — whichever arm wins carries the bytes.
		if c.hedge && b.Stripe >= 0 && len(b.Locations) > 0 {
			data, degraded, err := c.hedgedRead(b)
			if err == nil {
				c.cBlocksRead.Inc()
				if degraded {
					c.cDegradedBlocks.Inc()
				}
				c.cacheFill(b, data)
				return data, nil
			}
			lastErr = err
			continue
		}

		// Healthy path: walk live replicas fastest-first. A replica the
		// datanode refuses on checksum grounds is as gone as one on a
		// dead machine — count it and keep going; the stripe fallback
		// below reconstructs around it.
		if len(b.Locations) > 0 {
			for _, m := range c.replicaOrder(b.Locations) {
				data, err := c.dnRead(m, b.ID, 0, b.Size, nil)
				if err == nil {
					c.cBlocksRead.Inc()
					c.cacheFill(b, data)
					return data, nil
				}
				if isCorruptReplicaErr(err) {
					c.cCorruptReps.Inc()
				}
				lastErr = err
			}
		}

		// Degraded path: reconstruct from the stripe.
		if b.Stripe >= 0 {
			data, err := c.degradedRead(b)
			if err == nil {
				c.cBlocksRead.Inc()
				c.cDegradedBlocks.Inc()
				c.cacheFill(b, data)
				return data, nil
			}
			lastErr = err
		} else if len(b.Locations) == 0 && lastErr == nil {
			lastErr = fmt.Errorf("serve: block %d has no live replicas and no stripe", b.ID)
		}
	}
	return nil, lastErr
}

// degradedRead reconstructs one striped block: fetch the stripe layout,
// then either drive the partial-sum pipeline (one folded buffer from
// the helper tree) or execute the codec's repair plan with every helper
// range read over the wire, and truncate the decoded shard to the
// block's logical size. Phantom positions (short tail stripes) decode
// as zeros without touching the network — exactly the access pattern
// the repair plans charge for.
func (c *Client) degradedRead(b wireBlock) ([]byte, error) {
	// Sampling decision: every Nth degraded read mints a trace context
	// that rides every RPC the reconstruction issues, plus a root span
	// recorded locally whose Bytes is the total payload this client
	// downloaded to serve the read.
	var (
		tc         *telemetry.TraceContext
		rootSpan   uint64
		traceStart time.Time
		fetched    atomic.Int64
	)
	if c.sampleEvery > 0 && (c.degradedSeq.Add(1)-1)%c.sampleEvery == 0 {
		rootSpan = telemetry.NewID()
		tc = &telemetry.TraceContext{TraceID: telemetry.NewID(), SpanID: rootSpan, Sampled: true}
		c.lastTrace.Store(tc.TraceID)
		traceStart = time.Now()
	}
	out, err := c.degradedReadTraced(b, tc, &fetched)
	if tc != nil {
		span := telemetry.Span{
			TraceID:       tc.TraceID,
			SpanID:        rootSpan,
			Name:          "degraded_read",
			Process:       "client",
			StartUnixNano: traceStart.UnixNano(),
			DurationNanos: int64(time.Since(traceStart)),
			Bytes:         fetched.Load(),
		}
		if err != nil {
			span.Err = err.Error()
		}
		c.spans.Add(span)
	}
	return out, err
}

func (c *Client) degradedReadTraced(b wireBlock, tc *telemetry.TraceContext, fetched *atomic.Int64) ([]byte, error) {
	resp, err := c.nameCall(&request{Method: methodStripe, Stripe: b.Stripe, Trace: tc}, nil)
	if err != nil {
		return nil, err
	}
	st := resp.Stripe
	if st == nil {
		return nil, fmt.Errorf("serve: stripe %d reply missing layout", b.Stripe)
	}
	// The shard size comes off the wire; bound it before it sizes any
	// reconstruction buffer (here and in the partial-sum pipeline).
	if st.ShardSize <= 0 || st.ShardSize > maxPayloadBytes {
		return nil, fmt.Errorf("serve: stripe %d reports shard size %d out of bounds", b.Stripe, st.ShardSize)
	}
	// The target position is forced erased regardless of the layout's
	// listed holders: the caller only reaches the degraded path after
	// every replica failed to serve — dead daemon, or the datanode
	// refused the stored bytes on checksum grounds. The codec rejects
	// repairing a position whose alive-view says present, and a replica
	// that cannot be read does not count as present.
	alive := func(pos int) bool {
		if pos < 0 || pos >= len(st.Positions) {
			return false
		}
		if pos == b.StripePos {
			return false
		}
		p := st.Positions[pos]
		return p.Block < 0 || len(p.Locations) > 0
	}
	if c.partialSum {
		if shard, err := c.partialDegradedRead(b, st, alive, tc, fetched); err == nil {
			c.cPartialBlocks.Inc()
			return shard[:b.Size], nil
		}
		// Any pipeline failure (helper died mid-fold, stale addresses,
		// no linear plan) falls back to the conventional fan-in below.
	}
	fetch := func(req ec.ReadRequest) ([]byte, error) {
		if req.Length < 0 || req.Length > st.ShardSize {
			return nil, fmt.Errorf("serve: plan read of %d bytes exceeds shard size %d", req.Length, st.ShardSize)
		}
		p := st.Positions[req.Shard]
		if p.Block < 0 {
			return make([]byte, req.Length), nil
		}
		if len(p.Locations) == 0 {
			return nil, fmt.Errorf("serve: stripe %d position %d has no live holder", b.Stripe, req.Shard)
		}
		var lastErr error
		for _, m := range c.replicaOrder(p.Locations) {
			buf, err := c.dnRead(m, p.Block, req.Offset, req.Length, tc)
			if err == nil {
				c.cDegradedBytes.Add(req.Length)
				fetched.Add(req.Length)
				return buf, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}
	shard, err := c.code.ExecuteRepair(b.StripePos, st.ShardSize, alive, fetch)
	if err != nil {
		return nil, err
	}
	return shard[:b.Size], nil
}

// partialDegradedRead reconstructs one striped block through the
// distributed partial-sum pipeline: plan the repair as a linear
// combination, map each helper shard to a live holder, build the
// rack-aware fold tree, and download the single folded buffer from the
// root aggregator. The reconstructing client's NIC carries one
// block-sized payload instead of the plan's ~k.
func (c *Client) partialDegradedRead(b wireBlock, st *wireStripe, alive ec.AliveFunc, tc *telemetry.TraceContext, fetched *atomic.Int64) ([]byte, error) {
	// degradedRead bounds st.ShardSize before calling here; repeat the
	// check so the zero-fold fast path below stays safe under any
	// future caller.
	if st.ShardSize <= 0 || st.ShardSize > maxPayloadBytes {
		return nil, fmt.Errorf("serve: stripe %d reports shard size %d out of bounds", st.ID, st.ShardSize)
	}
	lp, ok := c.code.(ec.LinearRepairPlanner)
	if !ok {
		return nil, fmt.Errorf("serve: %s has no linear repair plan", c.code.Name())
	}
	c.mu.Lock()
	addrs := append([]string(nil), c.addrs...)
	perRack := c.perRack
	c.mu.Unlock()
	if perRack <= 0 {
		return nil, errors.New("serve: cluster handshake lacks rack geometry")
	}
	plan, err := lp.PlanLinearRepair(b.StripePos, st.ShardSize, alive)
	if err != nil {
		return nil, err
	}
	// Pin one live, addressable holder per stripe position up front so
	// the tree planner sees a stable placement.
	holder := make([]int, len(st.Positions))
	for pos, p := range st.Positions {
		holder[pos] = -1
		if p.Block < 0 {
			continue
		}
		for _, m := range c.replicaOrder(p.Locations) {
			if m >= 0 && m < len(addrs) && addrs[m] != "" {
				holder[pos] = m
				break
			}
		}
	}
	for _, t := range plan.Terms {
		if p := st.Positions[t.Read.Shard]; p.Block >= 0 && holder[t.Read.Shard] < 0 {
			return nil, fmt.Errorf("serve: stripe %d position %d has no addressable holder", st.ID, t.Read.Shard)
		}
	}
	tree, err := engine.PlanAggregationTree(plan,
		func(shard int) (int, bool) { return holder[shard], st.Positions[shard].Block >= 0 },
		func(m int) int { return m / perRack },
	)
	if err != nil {
		if errors.Is(err, engine.ErrNoHelpers) {
			// Every term was a phantom zero shard: the fold is zero.
			return make([]byte, st.ShardSize), nil
		}
		return nil, err
	}
	root, err := wireTree(tree.Root, st, addrs)
	if err != nil {
		return nil, err
	}
	out, err := c.dnCallTimeout(tree.Root.Machine, &request{
		Method:  methodDNPartial,
		Length:  tree.TargetSize,
		Partial: root,
		Trace:   tc,
	}, partialTimeout(len(tree.Nodes())))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) != tree.TargetSize {
		return nil, fmt.Errorf("serve: partial buffer has %d bytes, want %d", len(out), tree.TargetSize)
	}
	c.cDegradedBytes.Add(int64(len(out)))
	fetched.Add(int64(len(out)))
	return out, nil
}

// wireTree converts a planned aggregation tree into its wire form,
// resolving stripe positions to block ids and machines to daemon
// addresses.
func wireTree(n *engine.AggNode, st *wireStripe, addrs []string) (*wirePartialNode, error) {
	out := &wirePartialNode{Machine: n.Machine}
	if n.Machine >= 0 && n.Machine < len(addrs) {
		out.Addr = addrs[n.Machine]
	}
	if out.Addr == "" {
		return nil, fmt.Errorf("serve: helper machine %d has no address", n.Machine)
	}
	for _, t := range n.Terms {
		out.Terms = append(out.Terms, wirePartialTerm{
			Block:     st.Positions[t.Shard].Block,
			Offset:    t.Offset,
			Length:    t.Length,
			TargetOff: t.TargetOff,
			Coeff:     t.Coeff,
		})
	}
	for _, child := range n.Children {
		wc, err := wireTree(child, st, addrs)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, *wc)
	}
	return out, nil
}
