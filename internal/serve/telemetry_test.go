package serve

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/telemetry"
	"repro/internal/testutil/leakcheck"
)

// startTelemetrySystem is startTestSystem with the observability plane
// on. The leakcheck sentinel is registered first, so the debug HTTP
// listeners (when cfg.HTTP) must come down with the system — a leaked
// handler goroutine fails the test here.
func startTelemetrySystem(t *testing.T, code ec.Code, cfg TelemetryConfig) *System {
	t.Helper()
	leakcheck.Cleanup(t)
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: code.TotalShards() + 2, MachinesPerRack: 2},
		Code:        code,
		BlockSize:   4096,
		Replication: 3,
		Seed:        7,
	}, WithTelemetry(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// killFirstBlockHolder kills the datanode holding the file's first
// block and returns the victim machine.
func killFirstBlockHolder(t *testing.T, sys *System, name string) int {
	t.Helper()
	locs, err := sys.Cluster().BlockLocations(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) == 0 || len(locs[0]) == 0 {
		t.Fatalf("file %s has no located blocks", name)
	}
	victim := locs[0][0]
	if err := sys.KillDataNode(victim); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestCountersRaceFreeUnderLoad is the regression for the old torn
// counter reads: Counters() is hammered while reads and writes are in
// flight. Every field is an atomic registry read, so under -race this
// must be silent.
func TestCountersRaceFreeUnderLoad(t *testing.T) {
	code := testCodecs(t)[0]
	sys := startTestSystem(t, code)
	cl, err := Dial(sys.NameAddr(), code)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 4*4096)
	rng.Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	const readers, snapshots, iters = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := cl.ReadFile("f"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < snapshots; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readers*iters; i++ {
				c := cl.Counters()
				if c.BlocksRead < c.DegradedBlocks {
					t.Errorf("counters inverted: %+v", c)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c := cl.Counters(); c.Reads != readers*iters || c.BlocksRead != readers*iters*4 {
		t.Fatalf("final counters %+v, want %d reads / %d blocks", c, readers*iters, readers*iters*4)
	}
}

// TestDegradedReadSpanTreeAfterKill pins trace propagation end to end:
// a killed datanode forces the degraded path, the sampled read's trace
// context rides every RPC, and the spans collected from the client,
// the namenode, and the surviving datanodes assemble into a rooted,
// acyclic tree with no orphans (BuildTree validates exactly that).
// The system runs with the debug HTTP listeners ON so the leakcheck
// sentinel also covers their shutdown.
func TestDegradedReadSpanTreeAfterKill(t *testing.T) {
	for _, code := range testCodecs(t) {
		t.Run(code.Name(), func(t *testing.T) {
			sys := startTelemetrySystem(t, code, TelemetryConfig{HTTP: true})
			if sys.MetricsAddr() == "" {
				t.Fatal("debug HTTP listener missing")
			}
			cl, err := Dial(sys.NameAddr(), code, WithTraceSampling(1))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(3))
			data := make([]byte, 4*4096) // one full stripe for k=4
			rng.Read(data)
			if err := cl.WriteFile("f", data); err != nil {
				t.Fatal(err)
			}
			if err := cl.RaidFile("f"); err != nil {
				t.Fatal(err)
			}
			killFirstBlockHolder(t, sys, "f")

			got, err := cl.ReadFile("f")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("degraded read broken: %v", err)
			}
			if cl.Counters().DegradedBlocks == 0 {
				t.Fatal("kill produced no degraded block reads")
			}

			traceID := cl.LastTraceID()
			if traceID == 0 {
				t.Fatal("sampling every degraded read minted no trace")
			}
			spans, err := cl.CollectTrace(traceID)
			if err != nil {
				t.Fatal(err)
			}
			root, err := telemetry.BuildTree(spans)
			if err != nil {
				t.Fatalf("span tree invalid: %v", err)
			}
			if root.Name != "degraded_read" || root.Process != "client" {
				t.Fatalf("root span is %s@%s, want degraded_read@client", root.Name, root.Process)
			}
			if len(root.Children) == 0 {
				t.Fatal("root span has no children: no RPC hop recorded its span")
			}
			datanodes := 0
			root.Walk(func(n *telemetry.SpanNode) {
				if n.TraceID != traceID {
					t.Errorf("span %s carries trace %d, want %d", n.Name, n.TraceID, traceID)
				}
				if strings.HasPrefix(n.Process, "datanode-") {
					datanodes++
				}
			})
			if datanodes == 0 {
				t.Fatal("no datanode span in the tree: helper fetches did not propagate the trace")
			}
		})
	}
}

// TestPartialSumTraceByteAccounting is the acceptance criterion for
// the trace plane: a sampled degraded read served by the partial-sum
// pipeline must produce a span tree whose byte counts restate the
// BENCH_partialsum claim — the reconstructing client received exactly
// ONE block (the folded buffer), and every dn.partial hop moved one
// block-sized payload, not ~k helper ranges.
func TestPartialSumTraceByteAccounting(t *testing.T) {
	const blockSize = 4096
	code := testCodecs(t)[0] // rs: has the linear repair plan
	sys := startTelemetrySystem(t, code, TelemetryConfig{})
	cl, err := Dial(sys.NameAddr(), code, WithPartialSumRepair(), WithTraceSampling(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 4*blockSize) // one full stripe for k=4
	rng.Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	if err := cl.RaidFile("f"); err != nil {
		t.Fatal(err)
	}
	killFirstBlockHolder(t, sys, "f")

	got, err := cl.ReadFile("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("partial-sum degraded read broken: %v", err)
	}
	c := cl.Counters()
	if c.DegradedBlocks == 0 {
		t.Fatal("kill produced no degraded block reads")
	}
	if c.PartialSumBlocks != c.DegradedBlocks {
		t.Fatalf("%d of %d degraded reads fell back from the partial-sum pipeline",
			c.DegradedBlocks-c.PartialSumBlocks, c.DegradedBlocks)
	}
	// Exactly one block per degraded read crossed the client's NIC.
	if want := c.DegradedBlocks * blockSize; c.DegradedBytesFetched != want {
		t.Fatalf("client fetched %d degraded bytes for %d blocks, want %d (one block each)",
			c.DegradedBytesFetched, c.DegradedBlocks, want)
	}

	spans, err := cl.CollectTrace(cl.LastTraceID())
	if err != nil {
		t.Fatal(err)
	}
	root, err := telemetry.BuildTree(spans)
	if err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	if root.Bytes != blockSize {
		t.Fatalf("root span moved %d bytes, want exactly one %d-byte block", root.Bytes, blockSize)
	}
	folds := 0
	root.Walk(func(n *telemetry.SpanNode) {
		if n.Name != methodDNPartial {
			return
		}
		folds++
		if n.Bytes != blockSize {
			t.Errorf("dn.partial hop at %s moved %d bytes, want %d", n.Process, n.Bytes, blockSize)
		}
	})
	if folds == 0 {
		t.Fatal("no dn.partial span in the tree")
	}
}
