// Per-daemon telemetry plumbing: each daemon (namenode, every
// datanode) carries a nodeTelemetry — a handle on the System-wide
// metrics registry, its own bounded span store, and an optional
// loopback debug HTTP listener. The generic server loop threads every
// RPC through it (per-method counters, latency histograms, byte
// counters, span minting), so instrumenting a daemon costs its handler
// nothing.
package serve

import (
	"time"

	"repro/internal/telemetry"
)

// TelemetryConfig parameterises WithTelemetry.
type TelemetryConfig struct {
	// HTTP starts a loopback debug listener per daemon serving /metrics
	// and /debug/traces (off by default: tests that only want counters
	// skip the listeners entirely).
	HTTP bool
	// SpanBuffer caps each daemon's in-memory span store (default
	// telemetry.DefaultSpanBuffer).
	SpanBuffer int
}

// nodeTelemetry is one daemon's observability handle. A nil
// *nodeTelemetry disables everything (the zero-cost default).
type nodeTelemetry struct {
	reg   *telemetry.Registry
	spans *telemetry.SpanStore
	role  string // metric label: "namenode" | "datanode"
	proc  string // span process: "namenode", "datanode-3"
	http  *telemetry.DebugServer
}

// newNodeTelemetry builds the handle; the registry is the System-wide
// one, the span store and HTTP listener are per-daemon.
func newNodeTelemetry(reg *telemetry.Registry, cfg TelemetryConfig, role, proc string) (*nodeTelemetry, error) {
	nt := &nodeTelemetry{
		reg:   reg,
		spans: telemetry.NewSpanStore(cfg.SpanBuffer),
		role:  role,
		proc:  proc,
	}
	if cfg.HTTP {
		ds, err := telemetry.NewDebugServer(reg, nt.spans)
		if err != nil {
			return nil, err
		}
		nt.http = ds
	}
	return nt, nil
}

// debugAddr returns the daemon's debug HTTP address ("" when disabled).
func (t *nodeTelemetry) debugAddr() string {
	if t == nil || t.http == nil {
		return ""
	}
	return t.http.Addr()
}

// close releases the debug listener (nil-safe).
func (t *nodeTelemetry) close() {
	if t != nil && t.http != nil {
		t.http.Close()
	}
}

// rpcMetric builds a per-method instrument name, e.g.
// rpc_requests_total{role="datanode",method="dn.read"}.
func rpcMetric(base, role, method string) string {
	return base + `{role="` + role + `",method="` + method + `"}`
}

// dispatch is the instrumented request path of the generic server: it
// answers debug.trace itself, mints a server span for sampled requests
// (rewriting the header's span id so the handler's downstream calls
// parent under it), and charges the per-method instruments.
func (s *server) dispatch(req *request, payload []byte) (*response, []byte) {
	t := s.tele
	if t == nil {
		if req.Method == methodDebugTrace {
			return errResponse(errTracingDisabled), nil
		}
		return s.safeHandle(req, payload)
	}
	if req.Method == methodDebugTrace {
		resp := okResponse()
		if req.TraceID != 0 {
			resp.Spans = t.spans.Trace(req.TraceID)
		} else {
			resp.Spans = t.spans.Spans()
		}
		return resp, nil
	}

	sampled := req.Trace != nil && req.Trace.Sampled
	var parentID uint64
	if sampled {
		parentID = req.Trace.SpanID
		req.Trace.SpanID = telemetry.NewID()
	}
	start := time.Now()
	resp, out := s.safeHandle(req, payload)
	elapsed := time.Since(start)

	if reg := t.reg; reg != nil {
		reg.Counter(rpcMetric("rpc_requests_total", t.role, req.Method)).Inc()
		reg.Histogram(rpcMetric("rpc_request_seconds", t.role, req.Method), telemetry.LatencyBuckets).
			Observe(elapsed.Seconds())
		reg.Counter(rpcMetric("rpc_request_bytes_total", t.role, req.Method)).Add(int64(len(payload)))
		reg.Counter(rpcMetric("rpc_response_bytes_total", t.role, req.Method)).Add(int64(len(out)))
		if !resp.OK {
			reg.Counter(rpcMetric("rpc_errors_total", t.role, req.Method)).Inc()
		}
	}
	if sampled {
		t.spans.Add(telemetry.Span{
			TraceID:       req.Trace.TraceID,
			SpanID:        req.Trace.SpanID,
			ParentID:      parentID,
			Name:          req.Method,
			Process:       t.proc,
			StartUnixNano: start.UnixNano(),
			DurationNanos: int64(elapsed),
			Bytes:         int64(len(out)),
			Err:           resp.Err,
		})
	}
	return resp, out
}
