package serve

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

// TestHedgedReadOnThrottledDataNode pins the hedge engine's core
// claim, per codec: a datanode that is slow but alive costs one hedge
// delay, not an RPC timeout. The single replica of a raided block
// lands on a machine throttled far past the hedge delay; every read
// still returns byte-identical data, HedgedReads/HedgeWins move, and
// the throttled machine is never marked dead.
func TestHedgedReadOnThrottledDataNode(t *testing.T) {
	for _, code := range testCodecs(t) {
		t.Run(code.Name(), func(t *testing.T) {
			sys := startTestSystem(t, code)
			cl, err := Dial(sys.NameAddr(), code, WithHedgedReads(20*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(2))
			data := make([]byte, 3*4096+77)
			rng.Read(data)
			if err := cl.WriteFile("f", data); err != nil {
				t.Fatal(err)
			}
			if err := cl.RaidFile("f"); err != nil {
				t.Fatal(err)
			}
			_, blocks, err := cl.fileBlocks("f")
			if err != nil {
				t.Fatal(err)
			}
			if len(blocks[0].Locations) != 1 {
				t.Fatalf("raided block has %d replicas, want 1", len(blocks[0].Locations))
			}
			victim := blocks[0].Locations[0]
			if err := sys.ThrottleDataNode(victim, 250*time.Millisecond); err != nil {
				t.Fatal(err)
			}

			got, err := cl.ReadFile("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("hedged read returned mismatched bytes")
			}
			c := cl.Counters()
			if c.HedgedReads == 0 {
				t.Fatalf("throttled holder never triggered a hedge: %+v", c)
			}
			if c.HedgeWins == 0 {
				t.Fatalf("reconstruction never beat the throttled primary: %+v", c)
			}
			if c.DegradedBlocks == 0 {
				t.Fatalf("hedge wins were not counted as degraded serves: %+v", c)
			}
			if !sys.Cluster().MachineAlive(victim) {
				t.Fatalf("slow machine %d was marked dead", victim)
			}

			// Clearing the throttle restores the fast path: the same
			// bytes come straight off the replica again.
			if err := sys.ThrottleDataNode(victim, 0); err != nil {
				t.Fatal(err)
			}
			got, err = cl.ReadFile("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("post-throttle read returned mismatched bytes")
			}
		})
	}
}

// TestClientBlockCacheServesRepeatReads: with WithBlockCache, a reread
// is served from client memory — cache hits cover every block and no
// extra replica RPCs are issued, even when a holder has meanwhile been
// killed.
func TestClientBlockCacheServesRepeatReads(t *testing.T) {
	codes := testCodecs(t)
	sys := startTestSystem(t, codes[0])
	cl, err := Dial(sys.NameAddr(), codes[0], WithBlockCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 2*4096+9)
	rng.Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	if err := cl.RaidFile("f"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("first read mismatched")
	}
	c := cl.Counters()
	if c.CacheHits != 0 || c.CacheMisses != 3 {
		t.Fatalf("cold read counters %+v, want 0 hits / 3 misses", c)
	}

	// Kill the first block's only holder: the reread must not notice —
	// every block answers from the cache without a single datanode RPC.
	_, blocks, err := cl.fileBlocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.KillDataNode(blocks[0].Locations[0]); err != nil {
		t.Fatal(err)
	}
	got, err = cl.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("cached reread mismatched")
	}
	c = cl.Counters()
	if c.CacheHits != 3 || c.CacheMisses != 3 {
		t.Fatalf("warm read counters %+v, want 3 hits / 3 misses", c)
	}
	if c.DegradedBlocks != 0 {
		t.Fatalf("cached reread took the degraded path: %+v", c)
	}
}

// TestLatencyAwareOrderingAvoidsSlowReplica: with replicated blocks
// and one throttled holder, the EWMA steers reads to the fast replicas
// once the slow one has been sampled — later reads stop paying the
// throttle.
func TestLatencyAwareOrderingAvoidsSlowReplica(t *testing.T) {
	leakcheck.Cleanup(t)
	codes := testCodecs(t)
	sys := startTestSystem(t, codes[0])
	cl, err := Dial(sys.NameAddr(), codes[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(4)).Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	_, blocks, err := cl.fileBlocks("f")
	if err != nil {
		t.Fatal(err)
	}
	victim := blocks[0].Locations[0]
	if err := sys.ThrottleDataNode(victim, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Sample every replica (including the slow one), then time the
	// steady state: ordering must keep the throttled holder out of the
	// fast tier, so reads answer in microseconds, not 40ms.
	for i := 0; i < 6; i++ {
		if _, err := cl.ReadFile("f"); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := cl.ReadFile("f"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*40*time.Millisecond/2 {
		t.Fatalf("steady-state reads took %v: ordering still visits the throttled replica", elapsed)
	}
}
