package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPartialSumDegradedRead is the tentpole's end-to-end claim, per
// codec: with the partial-sum pipeline enabled, kill the datanode
// holding a data block while reads are in flight — every read still
// returns byte-identical data, the degraded blocks were served by the
// fold tree (not the conventional fan-in), and the client downloaded
// roughly ONE shard per reconstruction instead of the plan's ~k.
func TestPartialSumDegradedRead(t *testing.T) {
	for _, code := range testCodecs(t) {
		code := code
		t.Run(code.Name(), func(t *testing.T) {
			sys := startTestSystem(t, code)
			cl, err := Dial(sys.NameAddr(), code, WithPartialSumRepair())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(4))
			data := make([]byte, 6*4096) // spans stripes for k=4
			rng.Read(data)
			if err := cl.WriteFile("f", data); err != nil {
				t.Fatal(err)
			}
			if err := cl.RaidFile("f"); err != nil {
				t.Fatal(err)
			}

			// Readers hammer the file; the kill lands once reads are
			// demonstrably in flight (no wall-clock sleeps: progress is
			// signalled read-by-read).
			_, blocks, err := sys.Cluster().FileBlocks("f")
			if err != nil {
				t.Fatal(err)
			}
			victim := blocks[0].Locations[0]
			var completed atomic.Int64
			progress := make(chan struct{}, 1)
			stop := make(chan struct{})
			errs := make(chan error, 64)
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rcl, err := Dial(sys.NameAddr(), code, WithPartialSumRepair())
					if err != nil {
						errs <- err
						return
					}
					defer rcl.Close()
					for {
						select {
						case <-stop:
							return
						default:
						}
						got, err := rcl.ReadFile("f")
						if err != nil {
							errs <- fmt.Errorf("reader %d: %w", w, err)
							return
						}
						if !bytes.Equal(got, data) {
							errs <- fmt.Errorf("reader %d: content mismatch", w)
							return
						}
						completed.Add(1)
						select {
						case progress <- struct{}{}:
						default:
						}
					}
				}(w)
			}
			// Wait for the first completed healthy read, kill, then wait
			// for several more full reads to complete degraded. If every
			// reader exits on error the wait fails fast instead of
			// hanging on progress that will never come.
			readersDone := make(chan struct{})
			go func() { wg.Wait(); close(readersDone) }()
			waitProgress := func() bool {
				select {
				case <-progress:
					return true
				case <-readersDone:
					return false
				}
			}
			alive := waitProgress()
			if alive {
				if err := sys.KillDataNode(victim); err != nil {
					t.Fatal(err)
				}
				for target := completed.Load() + 6; alive && completed.Load() < target; {
					alive = waitProgress()
				}
			}
			close(stop)
			<-readersDone
			close(errs)
			failed := false
			for err := range errs {
				failed = true
				t.Errorf("read error during kill: %v", err)
			}
			if !alive && !failed {
				t.Fatal("readers exited early without reporting errors")
			}

			// A fresh read after the kill must be byte-identical, served
			// by the partial-sum pipeline, and ~1 shard of download per
			// degraded block.
			before := cl.Counters()
			got, err := cl.ReadFile("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("post-kill read is not byte-identical")
			}
			after := cl.Counters()
			degraded := after.DegradedBlocks - before.DegradedBlocks
			if degraded == 0 {
				t.Fatalf("expected degraded block reads after kill, counters %+v", after)
			}
			if partial := after.PartialSumBlocks - before.PartialSumBlocks; partial != degraded {
				t.Fatalf("%d of %d degraded reads took the partial-sum path", partial, degraded)
			}
			shardSize := int64(4096) // BlockSize == shard size for full blocks
			bytesFetched := after.DegradedBytesFetched - before.DegradedBytesFetched
			if perBlock := bytesFetched / degraded; perBlock != shardSize {
				t.Fatalf("partial-sum degraded read fetched %d bytes/block, want exactly one %d-byte shard", perBlock, shardSize)
			}
		})
	}
}

// TestPartialSumVersusConventionalBytes quantifies the tentpole's
// traffic claim on a live cluster: the identical degraded workload
// costs a conventional client ~k shards per reconstruction and a
// partial-sum client exactly one.
func TestPartialSumVersusConventionalBytes(t *testing.T) {
	code := testCodecs(t)[0] // rs(4,2): plan reads k=4 whole shards
	sys := startTestSystem(t, code)
	setup, err := Dial(sys.NameAddr(), code)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()

	data := bytes.Repeat([]byte("recovery"), 2048) // 4 blocks, one stripe
	if err := setup.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	if err := setup.RaidFile("f"); err != nil {
		t.Fatal(err)
	}
	_, blocks, err := sys.Cluster().FileBlocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.KillDataNode(blocks[0].Locations[0]); err != nil {
		t.Fatal(err)
	}

	perBlock := func(opts ...ClientOption) int64 {
		cl, err := Dial(sys.NameAddr(), code, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		got, err := cl.ReadFile("f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("degraded read not byte-identical")
		}
		c := cl.Counters()
		if c.DegradedBlocks == 0 {
			t.Fatal("no degraded blocks")
		}
		return c.DegradedBytesFetched / c.DegradedBlocks
	}

	shardSize := int64(4096)
	conventional := perBlock()
	partial := perBlock(WithPartialSumRepair())
	if conventional != int64(code.DataShards())*shardSize {
		t.Fatalf("conventional degraded read fetched %d bytes/block, want k*shard = %d", conventional, int64(code.DataShards())*shardSize)
	}
	if partial != shardSize {
		t.Fatalf("partial-sum degraded read fetched %d bytes/block, want one shard = %d", partial, shardSize)
	}
}
