// The sharded-metadata benchmark: a many-files Zipf metadata workload
// driven in-process against the hdfs.Metadata plane at increasing shard
// counts, measuring metadata ops/sec and metadata-lock wait. In-process
// (no TCP) is deliberate — the quantity under test is lock contention
// inside the metadata plane, and a socket round-trip per op would bury
// it.
//
// The workload models namenode reality: jobs. Each worker picks a
// dataset directory by Zipf popularity and issues a burst of metadata
// ops against it — the stat/location-lookup storm a map-reduce job
// fires at its input, plus part-file writes into the same directory.
// Directories are shard-local (files route by parent directory), so a
// burst holds one shard's lock footprint, and bursts against unrelated
// datasets never contend.
//
// Why sharding wins even on one core: the benchmark runs a small
// always-runnable interference load (Interference), standing in for
// the CPU work a real namenode process shares its machine with — RPC
// serving, heartbeats, GC, co-located jobs. Whenever the scheduler
// preempts a goroutine that holds a metadata lock, every worker that
// needs that lock parks behind it until the holder runs again. With a
// single lock that is ALL workers — the classic lock convoy — and the
// interference load soaks up the stalled window, so counted metadata
// throughput collapses for its duration. With N shards only the
// workers bursting against the stalled shard park; the rest keep
// serving their own shards through the window. On multi-core hardware
// the shards additionally run truly in parallel.
package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/rs"
)

// defaultShardBenchCode returns a narrow (4,2) RS code that fits the
// default 8-rack topology — the workload never raids, so the codec
// only sizes the config.
func defaultShardBenchCode() (ec.Code, error) { return rs.New(4, 2) }

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// ShardBenchConfig parameterises the sharded-metadata benchmark. The
// zero value of every field selects a default tuned to saturate a
// single metadata lock (many workers, tiny files, Zipf-skewed dataset
// popularity with a meaningful write share).
type ShardBenchConfig struct {
	// Racks and MachinesPerRack shape the physical cluster (defaults
	// 8 x 2 — placement never bottlenecks the metadata plane).
	Racks, MachinesPerRack int
	// BlockSize and FileBytes keep files single-block and tiny
	// (defaults 4 KiB / 512 B): the workload measures metadata, not IO.
	BlockSize int64
	FileBytes int64
	// Replication is the replica count (default 3).
	Replication int
	// Dirs is how many dataset directories the namespace holds
	// (default 64); FilesPerDir is each dataset's preloaded file count
	// (default 64). Files route to shards by directory, so Dirs is
	// what consistent hashing spreads.
	Dirs        int
	FilesPerDir int
	// Workers is the number of concurrent metadata clients (default
	// 64).
	Workers int
	// BurstOps is how many metadata ops one worker issues against a
	// dataset before picking the next (default 512) — the
	// stat/location-lookup storm of one job against one input.
	BurstOps int
	// WriteFraction is the probability an op writes a fresh part-file
	// into the burst's directory rather than reading it (default 0.3;
	// negative for pure reads). Writers are what convoy a metadata
	// lock.
	WriteFraction float64
	// ZipfS is the Zipf skew of dataset popularity (default 1.01 — a
	// long-tailed but balanced dataset mix; must be > 1).
	ZipfS float64
	// Duration is the measured run length per shard count (default
	// 2s).
	Duration time.Duration
	// ShardCounts are the metadata-plane sizes measured, in order
	// (default 1, 4, 16).
	ShardCounts []int
	// Reps is how many times each shard count is measured (default 3).
	// The report keeps each count's best repetition: the quantity under
	// test is the plane's capacity, and the max is the estimator least
	// disturbed by GC pauses and scheduler noise on a shared machine.
	Reps int
	// Interference is how many always-runnable CPU-bound goroutines
	// run alongside the workload (default 1), standing in for the rest
	// of a namenode process's CPU work. Lock-holder preemption — the
	// phenomenon sharding mitigates — needs a scheduler with somewhere
	// else to spend the stalled window. Negative disables.
	Interference int
	// Seed drives placement, routing, and the op mix.
	Seed int64
}

// withDefaults fills unset fields.
func (cfg ShardBenchConfig) withDefaults() ShardBenchConfig {
	if cfg.Racks == 0 {
		cfg.Racks = 8
	}
	if cfg.MachinesPerRack == 0 {
		cfg.MachinesPerRack = 2
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4 << 10
	}
	if cfg.FileBytes == 0 {
		cfg.FileBytes = 512
	}
	if cfg.Replication == 0 {
		cfg.Replication = 3
	}
	if cfg.Dirs == 0 {
		cfg.Dirs = 64
	}
	if cfg.FilesPerDir == 0 {
		cfg.FilesPerDir = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	if cfg.BurstOps == 0 {
		cfg.BurstOps = 512
	}
	switch {
	case cfg.WriteFraction == 0:
		cfg.WriteFraction = 0.3
	case cfg.WriteFraction < 0:
		cfg.WriteFraction = 0
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.01
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 4, 16}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	switch {
	case cfg.Interference == 0:
		cfg.Interference = 1
	case cfg.Interference < 0:
		cfg.Interference = 0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	return cfg
}

// ShardBenchRow is one shard count's measurement.
type ShardBenchRow struct {
	// Shards is the metadata-plane size this row measured.
	Shards int `json:"shards"`
	// Ops counts completed metadata operations; OpsPerSec is the
	// headline throughput.
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Errors counts failed operations (must be 0).
	Errors int64 `json:"errors"`
	// LockWaitMillis is cumulative time ops spent blocked acquiring
	// metadata locks, summed over shards (hdfs.LockStats);
	// LockWaitPerOpMicros normalises it per completed op — the
	// contention signal that falls as shards rise.
	LockWaitMillis      float64 `json:"lock_wait_ms"`
	LockWaitPerOpMicros float64 `json:"lock_wait_per_op_us"`
	// LockAcquisitions counts instrumented metadata-lock acquisitions.
	LockAcquisitions int64 `json:"lock_acquisitions"`
	// DurationSecs is the measured wall time.
	DurationSecs float64 `json:"duration_secs"`
}

// ShardBenchReport is the machine-readable BENCH_shards.json payload.
type ShardBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	Dirs          int     `json:"dirs"`
	FilesPerDir   int     `json:"files_per_dir"`
	FileBytes     int64   `json:"file_bytes"`
	BlockBytes    int64   `json:"block_bytes"`
	Workers       int     `json:"workers"`
	BurstOps      int     `json:"burst_ops"`
	WriteFraction float64 `json:"write_fraction"`
	ZipfS         float64 `json:"zipf_s"`
	DurationSecs  float64 `json:"duration_secs"`
	Reps          int     `json:"reps"`
	Interference  int     `json:"interference"`
	GOMAXPROCS    int     `json:"gomaxprocs"`

	Rows []ShardBenchRow `json:"rows"`
}

// runShardWorkload measures one shard count: build the metadata plane,
// preload the dataset directories, then hammer it from Workers
// goroutines in directory-affine bursts.
func runShardWorkload(cfg ShardBenchConfig, shards int) (ShardBenchRow, error) {
	row := ShardBenchRow{Shards: shards}
	code, err := defaultShardBenchCode()
	if err != nil {
		return row, err
	}
	md, err := hdfs.Open(hdfs.Config{
		Topology:    cluster.Topology{Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack},
		Code:        code,
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Seed:        cfg.Seed,
	}, hdfs.WithShards(shards))
	if err != nil {
		return row, err
	}

	payload := fileContent(cfg.Seed, "shardbench", cfg.FileBytes)
	names := make([][]string, cfg.Dirs)
	for d := range names {
		names[d] = make([]string, cfg.FilesPerDir)
		for f := range names[d] {
			names[d][f] = fmt.Sprintf("data-%04d/f-%05d", d, f)
			if err := md.WriteFile(names[d][f], payload); err != nil {
				return row, err
			}
		}
	}

	var ops, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Dirs-1))
			seq := 0
			for time.Now().Before(deadline) {
				// One job: a burst of lookups and part-file writes
				// against one Zipf-popular dataset directory. The
				// clock is checked once per sub-batch, not per op: the
				// ops are sub-microsecond map lookups and time.Now
				// costs as much.
				dir := int(zipf.Uint64())
				for i := 0; i < cfg.BurstOps; i++ {
					if i%64 == 63 && !time.Now().Before(deadline) {
						break
					}
					if rng.Float64() < cfg.WriteFraction {
						name := fmt.Sprintf("data-%04d/part-%d-%d-%d", dir, shards, w, seq)
						seq++
						if err := md.WriteFile(name, payload); err != nil {
							errs.Add(1)
							continue
						}
						ops.Add(1)
						continue
					}
					name := names[dir][rng.Intn(cfg.FilesPerDir)]
					var opErr error
					if i%8 == 0 {
						_, _, opErr = md.FileBlocks(name)
					} else {
						_, opErr = md.Stat(name)
					}
					if opErr != nil {
						errs.Add(1)
						continue
					}
					ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ls := md.LockStats()
	row.Ops = ops.Load()
	row.Errors = errs.Load()
	row.DurationSecs = elapsed.Seconds()
	if row.DurationSecs > 0 {
		row.OpsPerSec = float64(row.Ops) / row.DurationSecs
	}
	row.LockWaitMillis = float64(ls.WaitNanos) / 1e6
	row.LockAcquisitions = ls.Acquisitions
	if row.Ops > 0 {
		row.LockWaitPerOpMicros = float64(ls.WaitNanos) / 1e3 / float64(row.Ops)
	}
	return row, nil
}

// RunShardBench measures the directory-burst metadata workload at every
// configured shard count, Reps times each, keeping each count's best
// repetition. Repetitions interleave across shard counts (round 1 of
// every count, then round 2, ...) so slow drift — heap growth, machine
// noise — is spread over all counts instead of biasing whichever runs
// last, and a forced GC between runs keeps one round's garbage from
// being billed to the next.
//
// The run raises GOMAXPROCS to at least 2 for its duration: with a
// single scheduler thread, a preempted lock holder leaves the
// interference load nothing to run on, and the convoy the benchmark
// measures cannot form.
func RunShardBench(cfg ShardBenchConfig) (*ShardBenchReport, error) {
	cfg = cfg.withDefaults()
	if gomaxprocs() < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	report := &ShardBenchReport{
		Benchmark:     "sharded-metadata",
		Seed:          cfg.Seed,
		Dirs:          cfg.Dirs,
		FilesPerDir:   cfg.FilesPerDir,
		FileBytes:     cfg.FileBytes,
		BlockBytes:    cfg.BlockSize,
		Workers:       cfg.Workers,
		BurstOps:      cfg.BurstOps,
		WriteFraction: cfg.WriteFraction,
		ZipfS:         cfg.ZipfS,
		DurationSecs:  cfg.Duration.Seconds(),
		Reps:          cfg.Reps,
		Interference:  cfg.Interference,
		GOMAXPROCS:    gomaxprocs(),
	}

	var stop atomic.Bool
	var spinners sync.WaitGroup
	for i := 0; i < cfg.Interference; i++ {
		spinners.Add(1)
		go func() {
			defer spinners.Done()
			x := uint64(1)
			for !stop.Load() {
				x = x*6364136223846793005 + 1442695040888963407
			}
			_ = x
		}()
	}
	defer func() {
		stop.Store(true)
		spinners.Wait()
	}()

	best := make([]ShardBenchRow, len(cfg.ShardCounts))
	for rep := 0; rep < cfg.Reps; rep++ {
		for i, shards := range cfg.ShardCounts {
			runtime.GC()
			row, err := runShardWorkload(cfg, shards)
			if err != nil {
				return nil, fmt.Errorf("serve: shard bench at %d shards: %w", shards, err)
			}
			// Errors accumulate across reps (any error fails the gate);
			// throughput keeps the best rep.
			best[i].Errors += row.Errors
			if rep == 0 || row.OpsPerSec > best[i].OpsPerSec {
				errs := best[i].Errors
				best[i] = row
				best[i].Errors = errs
			}
		}
	}
	report.Rows = append(report.Rows, best...)
	return report, nil
}

// CheckScaling is the acceptance gate: no errors, and metadata ops/sec
// non-decreasing as shards rise (row order is the configured order).
func (r *ShardBenchReport) CheckScaling() error {
	prev := -1.0
	prevShards := 0
	for _, row := range r.Rows {
		if row.Errors > 0 {
			return fmt.Errorf("serve: shard bench at %d shards: %d op errors", row.Shards, row.Errors)
		}
		if row.OpsPerSec < prev {
			return fmt.Errorf("serve: metadata throughput regressed with sharding: %.0f ops/sec at %d shards < %.0f at %d",
				row.OpsPerSec, row.Shards, prev, prevShards)
		}
		prev = row.OpsPerSec
		prevShards = row.Shards
	}
	return nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *ShardBenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the per-shard-count comparison.
func (r *ShardBenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %12s %14s %16s %10s\n",
		"shards", "ops/sec", "lock wait", "lock wait/op", "errors")
	base := 0.0
	for i, row := range r.Rows {
		if i == 0 {
			base = row.OpsPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = row.OpsPerSec / base
		}
		fmt.Fprintf(&b, "%7d %12.0f %12.0fms %14.2fus %10d   (%.2fx)\n",
			row.Shards, row.OpsPerSec, row.LockWaitMillis, row.LockWaitPerOpMicros, row.Errors, speedup)
	}
	return b.String()
}
