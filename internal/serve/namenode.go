// The namenode daemon: the metadata authority of the serving layer.
// Clients ask it where blocks live ("blocks"), how a stripe is laid
// out ("stripe", the handshake of a degraded read), and hand it whole
// files to place ("write"). It also fronts the control plane — raiding
// files, driving a block-fixer pass, and failing/restoring machines —
// so a failure-injecting load generator needs nothing but the wire
// protocol.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
	"repro/internal/telemetry"
)

// repairStatusToWire flattens a manager status for the wire: detector
// states as strings, the tier map as a sorted list.
func repairStatusToWire(st repairmgr.Status) *wireRepairStatus {
	w := &wireRepairStatus{
		QueueDepth:      st.QueueDepth,
		Paused:          st.Paused,
		DegradedStripes: st.DegradedStripes,
		DegradedBlocks:  st.DegradedBlocks,
		RepairsDone:     st.RepairsDone,
		RepairedBytes:   st.RepairedBytes,
		Unrecoverable:   st.Unrecoverable,
		AvoidedRepairs:  st.AvoidedRepairs,
		AvoidedBytes:    st.AvoidedRepairBytes,
		LostBlocks:      st.LostBlocks,
		ScrubSlices:     st.ScrubSlices,
		ScrubReplicas:   st.ScrubbedReplicas,
		ScrubCorrupt:    st.ScrubCorrupt,
		ThrottleBps:     st.ThrottleBytesPerSec,

		UptimeSeconds:    st.UptimeSeconds,
		SecondsSincePoll: st.SecondsSincePoll,
		PollCount:        st.PollCount,
	}
	for _, n := range st.Nodes {
		w.Nodes = append(w.Nodes, wireNodeState{Machine: n.Machine, State: n.State.String()})
	}
	tiers := make([]int, 0, len(st.QueueByErasures))
	for e := range st.QueueByErasures {
		tiers = append(tiers, e)
	}
	sort.Ints(tiers)
	for _, e := range tiers {
		w.QueueByErasures = append(w.QueueByErasures, wireTierDepth{Erasures: e, Count: st.QueueByErasures[e]})
	}
	for _, c := range st.Completed {
		w.Completed = append(w.Completed, wireCompletedFix{
			Seq:           c.Seq,
			Kind:          c.Kind.String(),
			Stripe:        int64(c.Stripe),
			Block:         int64(c.Block),
			Erasures:      c.Erasures,
			Bytes:         c.Bytes,
			WaitSeconds:   c.WaitSeconds,
			Unrecoverable: c.Unrecoverable,
		})
	}
	return w
}

// control is what the namenode needs from the System hosting it:
// the live datanode address table and machine-level failure control
// that kills or restarts the daemons along with the stored state.
type control interface {
	dataNodeAddrs() []string
	killDataNode(machine int) error
	restartDataNode(machine int) error
}

// NameNode is the metadata daemon.
type NameNode struct {
	cluster hdfs.Metadata
	code    ec.Code
	bs      int64
	ctl     control
	mgr     *repairmgr.Manager // nil when the control plane is disabled
	srv     *server
	tele    *nodeTelemetry

	// cDegradedPlans counts stripe-layout requests — each one is a
	// client planning a degraded read (healthy reads never ask).
	cDegradedPlans *telemetry.Counter
}

// startNameNode launches the namenode on an ephemeral localhost port.
// mgr, when non-nil, is the repair control plane the namenode fronts:
// dn.heartbeat frames feed its failure detector and repair.status
// exposes its queue/node/throttle state. tele may be nil.
func startNameNode(cluster hdfs.Metadata, code ec.Code, blockSize int64, ctl control, mgr *repairmgr.Manager, tele *nodeTelemetry) (*NameNode, error) {
	n := &NameNode{cluster: cluster, code: code, bs: blockSize, ctl: ctl, mgr: mgr, tele: tele}
	if tele != nil && tele.reg != nil {
		n.cDegradedPlans = tele.reg.Counter("serve_degraded_plans_total")
	}
	srv, err := newServer(n.handle, tele)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	return n, nil
}

// Addr returns the namenode's listen address.
func (n *NameNode) Addr() string { return n.srv.addr() }

func (n *NameNode) handle(req *request, payload []byte) (*response, []byte) {
	switch req.Method {
	case methodInfo:
		resp := okResponse()
		resp.Codec = n.code.Name()
		resp.BlockSize = n.bs
		resp.DataNodes = n.ctl.dataNodeAddrs()
		resp.MachinesPerRack = n.cluster.Topology().MachinesPerRack
		return resp, nil

	case methodStat:
		info, err := n.cluster.Stat(req.Name)
		if err != nil {
			return errResponse(err), nil
		}
		resp := okResponse()
		resp.Size = info.Size
		resp.Raided = info.Raided
		return resp, nil

	case methodBlocks:
		size, blocks, err := n.cluster.FileBlocks(req.Name)
		if err != nil {
			return errResponse(err), nil
		}
		resp := okResponse()
		resp.Size = size
		resp.Blocks = make([]wireBlock, len(blocks))
		for i, b := range blocks {
			resp.Blocks[i] = wireBlock{
				ID:        int64(b.ID),
				Size:      b.Size,
				Stripe:    int64(b.Stripe),
				StripePos: b.StripePos,
				Locations: b.Locations,
			}
		}
		return resp, nil

	case methodStripe:
		n.cDegradedPlans.Inc()
		d, err := n.cluster.Stripe(hdfs.StripeID(req.Stripe))
		if err != nil {
			return errResponse(err), nil
		}
		ws := &wireStripe{ID: int64(d.ID), ShardSize: d.ShardSize, Positions: make([]wirePos, len(d.Positions))}
		for i, p := range d.Positions {
			ws.Positions[i] = wirePos{Block: int64(p.Block), Size: p.Size, Locations: p.Locations}
		}
		resp := okResponse()
		resp.Stripe = ws
		return resp, nil

	case methodWrite:
		// Idempotent: a client that lost the response frame mid-flight
		// (connection severed after the server applied the write)
		// retries the identical request; re-applying an already-stored
		// file with identical content is success, not ErrFileExists.
		if err := n.cluster.WriteFile(req.Name, payload); err != nil {
			if errors.Is(err, hdfs.ErrFileExists) {
				if existing, rerr := n.cluster.ReadFile(req.Name); rerr == nil && bytes.Equal(existing, payload) {
					return okResponse(), nil
				}
			}
			return errResponse(err), nil
		}
		return okResponse(), nil

	case methodRaid:
		// Idempotent for the same reason: "ensure raided".
		if err := n.cluster.RaidFile(req.Name); err != nil && !errors.Is(err, hdfs.ErrAlreadyRaided) {
			return errResponse(err), nil
		}
		return okResponse(), nil

	case methodFixer:
		rep, err := n.cluster.RunBlockFixer()
		if err != nil {
			return errResponse(err), nil
		}
		resp := okResponse()
		resp.Fix = &wireFixReport{
			ScannedBlocks:   rep.ScannedBlocks,
			RepairedStriped: rep.RepairedStriped,
			ReReplicated:    rep.ReReplicated,
			Unrecoverable:   len(rep.Unrecoverable),
		}
		return resp, nil

	case methodFail:
		if err := n.ctl.killDataNode(req.Machine); err != nil {
			return errResponse(err), nil
		}
		return okResponse(), nil

	case methodRestore:
		if err := n.ctl.restartDataNode(req.Machine); err != nil {
			return errResponse(err), nil
		}
		return okResponse(), nil

	case methodHeartbeat:
		if n.mgr == nil {
			return errResponse(errors.New("serve: repair manager disabled")), nil
		}
		if err := n.mgr.Heartbeat(req.Machine); err != nil {
			return errResponse(err), nil
		}
		return okResponse(), nil

	case methodRepairStatus:
		if n.mgr == nil {
			return errResponse(errors.New("serve: repair manager disabled")), nil
		}
		resp := okResponse()
		resp.Repair = repairStatusToWire(n.mgr.Status())
		return resp, nil

	default:
		return errResponse(fmt.Errorf("serve: namenode: unknown method %q", req.Method)), nil
	}
}

// DebugAddr returns the namenode's debug HTTP address ("" when the
// system runs without telemetry HTTP listeners).
func (n *NameNode) DebugAddr() string { return n.tele.debugAddr() }

// close severs the listener and every client connection.
func (n *NameNode) close() {
	n.srv.close()
	n.tele.close()
}
