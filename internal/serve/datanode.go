// The datanode daemon: one TCP server per storage machine, answering
// replica range reads straight out of that machine's block store. It
// is deliberately dumb — no metadata, no placement — matching the
// production split where datanodes move bytes and the namenode knows
// where they are. Repair-helper reads (the byte ranges a degraded read
// or block fix downloads) arrive here as ordinary dn.read calls with a
// sub-block offset and length.
//
// The one smart thing a datanode does is dn.partial: the helper-side
// half of partial-sum repair. The request carries a fold tree; the
// daemon reads its own term ranges, scales each by its GF(2^8)
// coefficient into a target-sized buffer, recursively collects each
// child subtree's folded buffer from the child's daemon (in parallel),
// XORs everything together, and answers with the single folded buffer.
// The requester — the next helper up the tree, or the reconstructing
// client — receives one block-sized payload however many helpers fed
// the subtree.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gf256"
	"repro/internal/hdfs"
	"repro/internal/telemetry"
)

// DataNode is one machine's serving daemon.
type DataNode struct {
	cluster hdfs.MetadataView
	machine int
	srv     *server
	tele    *nodeTelemetry

	// throttle (nanoseconds) delays every data-path RPC — dn.read and
	// dn.partial — before it touches the store: the injected shape of a
	// slow-but-alive machine (overloaded disk, congested uplink).
	// Heartbeats and pings stay prompt, so a throttled machine is never
	// mistaken for a dead one; only its data service degrades.
	throttle atomic.Int64

	// Partial-sum fold instruments (nil when uninstrumented): folds
	// executed by this daemon and local multiply-accumulate terms
	// applied, the observable cost split of aggregation-tree repair.
	cFolds     *telemetry.Counter
	cFoldTerms *telemetry.Counter

	// Heartbeat sender state (control plane enabled only): hbStop ends
	// the loop, hbWg waits it out on close.
	hbMu   sync.Mutex
	hbStop chan struct{}
	hbWg   sync.WaitGroup
}

// startDataNode launches the daemon for one machine on an ephemeral
// localhost port. tele may be nil.
func startDataNode(cluster hdfs.MetadataView, machine int, tele *nodeTelemetry) (*DataNode, error) {
	d := &DataNode{cluster: cluster, machine: machine, tele: tele}
	if tele != nil && tele.reg != nil {
		d.cFolds = tele.reg.Counter("serve_partial_folds_total")
		d.cFoldTerms = tele.reg.Counter("serve_partial_fold_terms_total")
	}
	srv, err := newServer(d.handle, tele)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	return d, nil
}

// Addr returns the daemon's listen address.
func (d *DataNode) Addr() string { return d.srv.addr() }

// Machine returns the machine index the daemon serves.
func (d *DataNode) Machine() int { return d.machine }

// setThrottle installs (or with 0 clears) the daemon's data-path
// delay.
func (d *DataNode) setThrottle(delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	d.throttle.Store(int64(delay))
}

// dataDelay sleeps the configured throttle before a data-path RPC is
// served.
func (d *DataNode) dataDelay() {
	if delay := d.throttle.Load(); delay > 0 {
		time.Sleep(time.Duration(delay))
	}
}

func (d *DataNode) handle(req *request, _ []byte) (*response, []byte) {
	switch req.Method {
	case methodDNRead:
		d.dataDelay()
		buf, err := d.cluster.NodeReadRange(d.machine, hdfs.BlockID(req.Block), req.Offset, req.Length)
		if err != nil {
			return errResponse(err), nil
		}
		return okResponse(), buf
	case methodDNPing:
		if !d.cluster.MachineAlive(d.machine) {
			return errResponse(fmt.Errorf("serve: datanode %d down", d.machine)), nil
		}
		return okResponse(), nil
	case methodDNPartial:
		d.dataDelay()
		buf, err := d.partial(req)
		if err != nil {
			return errResponse(err), nil
		}
		return okResponse(), buf
	default:
		return errResponse(fmt.Errorf("serve: datanode: unknown method %q", req.Method)), nil
	}
}

// maxTargetSize returns the largest legitimate fold-buffer size: the
// cluster's block bound rounded up to the codec's shard alignment. A
// hostile request declaring anything bigger is rejected before the
// first allocation — without this, a kilobyte-sized frame could make
// every node of a 256-node tree allocate and ship maxPayloadBytes.
func (d *DataNode) maxTargetSize() int64 {
	bs := d.cluster.BlockSize()
	if align := int64(d.cluster.Code().MinShardSize()); align > 1 && bs%align != 0 {
		bs += align - bs%align
	}
	return bs
}

// partial answers one dn.partial call: fold this node's terms and its
// children's folded buffers into one target-sized partial sum.
func (d *DataNode) partial(req *request) ([]byte, error) {
	if err := validatePartial(req.Partial, req.Length); err != nil {
		return nil, err
	}
	if max := d.maxTargetSize(); req.Length > max {
		return nil, fmt.Errorf("serve: partial target size %d exceeds shard bound %d", req.Length, max)
	}
	if req.Partial.Machine != d.machine {
		return nil, fmt.Errorf("serve: partial tree addressed to machine %d, this is %d", req.Partial.Machine, d.machine)
	}
	return d.fold(req.Partial, req.Length, req.Trace)
}

// fold computes one node's partial sum: local terms multiply-accumulate
// out of this machine's block store; child subtrees are fetched from
// their daemons concurrently and XORed in. The returned buffer is the
// subtree's entire contribution to the repaired shard.
func (d *DataNode) fold(n *wirePartialNode, targetSize int64, trace *telemetry.TraceContext) ([]byte, error) {
	d.cFolds.Inc()
	d.cFoldTerms.Add(int64(len(n.Terms)))
	//repolint:ignore framecheck targetSize is bounds-checked by partial() (validatePartial plus the shard-size cap) before the recursion starts
	buf := make([]byte, targetSize)
	for _, t := range n.Terms {
		data, err := d.cluster.NodeReadRange(d.machine, hdfs.BlockID(t.Block), t.Offset, t.Length)
		if err != nil {
			return nil, err
		}
		gf256.MulSliceXor(t.Coeff, data, buf[t.TargetOff:t.TargetOff+t.Length])
	}
	if len(n.Children) == 0 {
		return buf, nil
	}
	parts := make([][]byte, len(n.Children))
	errs := make([]error, len(n.Children))
	var wg sync.WaitGroup
	for i := range n.Children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = fetchChildPartial(&n.Children[i], targetSize, trace)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: partial from machine %d: %w", n.Children[i].Machine, err)
		}
		gf256.XorSlice(parts[i], buf)
	}
	return buf, nil
}

// fetchChildPartial performs one child-subtree RPC over a fresh
// connection. Partial-sum trees are per-repair, so there is no pooling
// to reuse; a localhost dial is microseconds. The deadline covers the
// child's ENTIRE subtree fold, so it scales with the subtree size
// instead of being a flat per-hop bound — a deep rack chain must not
// time out level by level while every node is healthy.
func fetchChildPartial(child *wirePartialNode, targetSize int64, trace *telemetry.TraceContext) ([]byte, error) {
	timeout := partialTimeout(child.countNodes(maxPartialNodes))
	cn, err := dialConn(child.Addr, timeout)
	if err != nil {
		return nil, err
	}
	defer cn.close()
	// trace carries THIS daemon's span id (the dispatch layer rewrote it
	// before the handler ran), so the child's span parents correctly.
	_, out, err := cn.call(&request{Method: methodDNPartial, Length: targetSize, Partial: child, Trace: trace}, nil, timeout)
	if err != nil {
		return nil, err
	}
	if int64(len(out)) != targetSize {
		return nil, fmt.Errorf("serve: partial buffer has %d bytes, want %d", len(out), targetSize)
	}
	return out, nil
}

// heartbeatTimeout bounds one dn.heartbeat round trip: long enough for
// a briefly busy namenode, short enough that a wedged one does not
// back the sender up past its own death being declared.
const heartbeatTimeout = time.Second

// startHeartbeats launches the daemon's heartbeat loop: one
// dn.heartbeat frame to the namenode immediately and then every
// `every`, on a connection that is redialled after any transport
// failure. Killing the daemon (close) stops the loop — which is
// exactly how the failure detector learns about the death: silence.
func (d *DataNode) startHeartbeats(nameAddr string, every time.Duration) {
	d.hbMu.Lock()
	defer d.hbMu.Unlock()
	if d.hbStop != nil {
		return // already beating
	}
	stop := make(chan struct{})
	d.hbStop = stop
	d.hbWg.Add(1)
	go func() {
		defer d.hbWg.Done()
		var cn *conn
		defer func() {
			if cn != nil {
				cn.close()
			}
		}()
		beat := func() {
			if cn == nil {
				fresh, err := dialConn(nameAddr, heartbeatTimeout)
				if err != nil {
					return // namenode unreachable; retry next tick
				}
				cn = fresh
			}
			req := &request{Method: methodHeartbeat, Machine: d.machine}
			if _, _, err := cn.call(req, nil, heartbeatTimeout); err != nil {
				if _, remote := err.(*RemoteError); !remote {
					cn.close()
					cn = nil
				}
			}
		}
		beat()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				beat()
			}
		}
	}()
}

// stopHeartbeats ends the heartbeat loop (idempotent).
func (d *DataNode) stopHeartbeats() {
	d.hbMu.Lock()
	stop := d.hbStop
	d.hbStop = nil
	d.hbMu.Unlock()
	if stop != nil {
		close(stop)
		d.hbWg.Wait()
	}
}

// DebugAddr returns the daemon's debug HTTP address ("" when the
// system runs without telemetry HTTP listeners).
func (d *DataNode) DebugAddr() string { return d.tele.debugAddr() }

// close severs the listener and every client connection, and silences
// the heartbeat loop.
func (d *DataNode) close() {
	d.stopHeartbeats()
	d.srv.close()
	d.tele.close()
}
