// The datanode daemon: one TCP server per storage machine, answering
// replica range reads straight out of that machine's block store. It
// is deliberately dumb — no metadata, no placement — matching the
// production split where datanodes move bytes and the namenode knows
// where they are. Repair-helper reads (the byte ranges a degraded read
// or block fix downloads) arrive here as ordinary dn.read calls with a
// sub-block offset and length.
package serve

import (
	"fmt"

	"repro/internal/hdfs"
)

// DataNode is one machine's serving daemon.
type DataNode struct {
	cluster *hdfs.Cluster
	machine int
	srv     *server
}

// startDataNode launches the daemon for one machine on an ephemeral
// localhost port.
func startDataNode(cluster *hdfs.Cluster, machine int) (*DataNode, error) {
	d := &DataNode{cluster: cluster, machine: machine}
	srv, err := newServer(d.handle)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	return d, nil
}

// Addr returns the daemon's listen address.
func (d *DataNode) Addr() string { return d.srv.addr() }

// Machine returns the machine index the daemon serves.
func (d *DataNode) Machine() int { return d.machine }

func (d *DataNode) handle(req *request, _ []byte) (*response, []byte) {
	switch req.Method {
	case methodDNRead:
		buf, err := d.cluster.NodeReadRange(d.machine, hdfs.BlockID(req.Block), req.Offset, req.Length)
		if err != nil {
			return errResponse(err), nil
		}
		return okResponse(), buf
	case methodDNPing:
		if !d.cluster.MachineAlive(d.machine) {
			return errResponse(fmt.Errorf("serve: datanode %d down", d.machine)), nil
		}
		return okResponse(), nil
	default:
		return errResponse(fmt.Errorf("serve: datanode: unknown method %q", req.Method)), nil
	}
}

// close severs the listener and every client connection.
func (d *DataNode) close() { d.srv.close() }
