// The repair-manager benchmark: the control plane measured end to end
// on live TCP clusters, per codec, written to BENCH_repairmgr.json.
//
// Four scenarios per codec:
//
//  1. Time to full health: kill a datanode holding working-set data
//     and measure how long the control plane takes to detect, triage,
//     and repair back to full health — with zero manual fixer calls.
//
//  2. Grace-window savings: kill-then-restart INSIDE the grace window
//     must move zero repair bytes; the identical kill-restart against
//     an eager (zero-grace) manager measures the bytes the window
//     saved.
//
//  3. Foreground p99 under background repair: closed-loop clients read
//     a working set while a mid-run kill sends the manager repairing
//     in the background — once unthrottled, once behind the token
//     bucket — and the clients' p50/p99 read latency is the cost the
//     throttle is buying back.
//
//  4. Trace replay: the paper's 24-day failure trace through the
//     manager's policies (sim.RunManagerReplay) for repair bytes saved
//     and contended-fabric p99s.
//
// Latency numbers are wall clock on whatever host runs them and are
// comparable codec-to-codec within one run only; the byte accounting
// and the replay fractions are the portable results.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/ec"
	"repro/internal/hdfs"
	"repro/internal/repairmgr"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Control-plane timings shared by the bench scenarios: detection in a
// few hundred milliseconds so scenarios run in seconds.
const (
	benchSuspectAfter = 150 * time.Millisecond
	benchGraceShort   = 200 * time.Millisecond  // scenarios 1 and 3
	benchGraceLong    = 1200 * time.Millisecond // scenario 2's window
	benchPoll         = 20 * time.Millisecond
)

// RepairMgrBenchConfig parameterises the benchmark. Zero values select
// defaults.
type RepairMgrBenchConfig struct {
	// Racks and MachinesPerRack shape each live cluster; Racks defaults
	// to the widest codec's stripe width + 2.
	Racks, MachinesPerRack int
	// BlockSize, Files, FileBytes shape the raided working set.
	BlockSize int64
	Files     int
	FileBytes int64
	// Clients and LoadDuration drive scenario 3's closed loop.
	Clients      int
	LoadDuration time.Duration
	// ThrottleBytesPerSec is scenario 3's token-bucket cap.
	ThrottleBytesPerSec float64
	// TraceDays and SimMaxDays shape scenario 4's replay (24-day trace,
	// a few days simulated on the contended fabric).
	TraceDays  int
	SimMaxDays int
	// Seed drives placement and content.
	Seed int64
}

// withDefaults fills unset fields.
func (c RepairMgrBenchConfig) withDefaults(codecs []ec.Code) RepairMgrBenchConfig {
	width := 0
	for _, code := range codecs {
		if w := code.TotalShards(); w > width {
			width = w
		}
	}
	if c.Racks == 0 {
		c.Racks = width + 2
	}
	if c.MachinesPerRack == 0 {
		c.MachinesPerRack = 2
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.Files == 0 {
		c.Files = 8
	}
	if c.FileBytes == 0 {
		c.FileBytes = 4 * c.BlockSize
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.LoadDuration == 0 {
		c.LoadDuration = 4 * time.Second
	}
	if c.ThrottleBytesPerSec == 0 {
		c.ThrottleBytesPerSec = 512 << 10
	}
	if c.TraceDays == 0 {
		c.TraceDays = 24
	}
	if c.SimMaxDays == 0 {
		c.SimMaxDays = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RepairMgrCodecResult is one codec's measurements.
type RepairMgrCodecResult struct {
	Codec string `json:"codec"`

	// Scenario 1.
	TimeToFullHealthSecs float64 `json:"time_to_full_health_secs"`
	AutoRepairs          int     `json:"auto_repairs"`
	AutoRepairedBytes    int64   `json:"auto_repaired_bytes"`
	ManualFixerCalls     int     `json:"manual_fixer_calls"` // zero by construction

	// Scenario 2.
	GraceRestartRepairBytes int64 `json:"grace_restart_repair_bytes"` // must be 0
	EagerRestartRepairBytes int64 `json:"eager_restart_repair_bytes"`
	GraceSavedBytes         int64 `json:"grace_saved_bytes"`
	GraceAvoidedRepairs     int   `json:"grace_avoided_repairs"`

	// Scenario 3.
	UnthrottledReadP50Millis float64 `json:"unthrottled_read_p50_ms"`
	UnthrottledReadP99Millis float64 `json:"unthrottled_read_p99_ms"`
	UnthrottledRecoverySecs  float64 `json:"unthrottled_recovery_secs"`
	ThrottledReadP50Millis   float64 `json:"throttled_read_p50_ms"`
	ThrottledReadP99Millis   float64 `json:"throttled_read_p99_ms"`
	ThrottledRecoverySecs    float64 `json:"throttled_recovery_secs"`
	LoadReads                int64   `json:"load_reads"`
	LoadErrors               int64   `json:"load_errors"`
	LoadDegradedBlocks       int64   `json:"load_degraded_blocks"`

	// Scenario 4.
	Replay *sim.ManagerReplayResult `json:"trace_replay,omitempty"`
}

// RepairMgrBenchReport is the BENCH_repairmgr.json payload.
type RepairMgrBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Seed        int64  `json:"seed"`

	Racks               int     `json:"racks"`
	MachinesPerRack     int     `json:"machines_per_rack"`
	BlockBytes          int64   `json:"block_bytes"`
	Files               int     `json:"files"`
	FileBytes           int64   `json:"file_bytes"`
	Clients             int     `json:"clients"`
	LoadDurationSecs    float64 `json:"load_duration_secs"`
	ThrottleBytesPerSec float64 `json:"throttle_bytes_per_sec"`
	SuspectAfterSecs    float64 `json:"suspect_after_secs"`
	GraceWindowSecs     float64 `json:"grace_window_secs"`
	TraceDays           int     `json:"trace_days"`

	Codecs []RepairMgrCodecResult `json:"codecs"`
}

// benchSystem starts a managed cluster and preloads a raided working
// set, returning the system, the victim machine (holder of the first
// file's first block), and the per-file contents.
func benchSystem(code ec.Code, cfg RepairMgrBenchConfig, mcfg repairmgr.Config) (*System, int, map[string][]byte, error) {
	sys, err := Start(hdfs.Config{
		Topology:    cluster.Topology{Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack},
		Code:        code,
		BlockSize:   cfg.BlockSize,
		Replication: 3,
		Seed:        cfg.Seed,
	}, WithRepairManager(mcfg))
	if err != nil {
		return nil, 0, nil, err
	}
	setup, err := Dial(sys.NameAddr(), code)
	if err != nil {
		sys.Close()
		return nil, 0, nil, err
	}
	defer setup.Close()
	files := make(map[string][]byte, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("preload-%d", i)
		data := fileContent(cfg.Seed, name, cfg.FileBytes)
		if err := setup.WriteFile(name, data); err != nil {
			sys.Close()
			return nil, 0, nil, err
		}
		if err := setup.RaidFile(name); err != nil {
			sys.Close()
			return nil, 0, nil, err
		}
		files[name] = data
	}
	locs, err := sys.Cluster().BlockLocations("preload-0")
	if err != nil || len(locs) == 0 || len(locs[0]) == 0 {
		sys.Close()
		return nil, 0, nil, fmt.Errorf("serve: no victim for the working set: %v", err)
	}
	return sys, locs[0][0], files, nil
}

// awaitHealthy polls the cluster until the manager has restored full
// health and drained its queue.
func awaitHealthy(sys *System, deadline time.Duration) error {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if sys.Cluster().Health().Healthy() && sys.RepairManager().QueueDepth() == 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("serve: cluster did not return to full health within %v: %+v",
		deadline, sys.Cluster().Health())
}

// awaitNodeState polls the detector for one machine's state.
func awaitNodeState(sys *System, machine int, want repairmgr.NodeState, deadline time.Duration) error {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if sys.RepairManager().NodeState(machine) == want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("serve: machine %d never reached %v", machine, want)
}

// timeToFullHealth runs scenario 1 for one codec.
func timeToFullHealth(code ec.Code, cfg RepairMgrBenchConfig, res *RepairMgrCodecResult) error {
	sys, victim, _, err := benchSystem(code, cfg, repairmgr.Config{
		SuspectAfter: benchSuspectAfter,
		GraceWindow:  benchGraceShort,
		PollInterval: benchPoll,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	start := time.Now()
	if err := sys.KillDataNode(victim); err != nil {
		return err
	}
	if err := awaitHealthy(sys, 60*time.Second); err != nil {
		return err
	}
	res.TimeToFullHealthSecs = time.Since(start).Seconds()
	st := sys.RepairManager().Status()
	res.AutoRepairs = st.RepairsDone
	res.AutoRepairedBytes = st.RepairedBytes
	res.ManualFixerCalls = 0 // nothing here ever calls RunBlockFixer
	if st.RepairsDone == 0 {
		return errors.New("serve: cluster healed with zero repairs recorded")
	}
	return nil
}

// graceSavings runs scenario 2: the same kill-then-restart against a
// graceful manager (zero bytes expected) and an eager one (the bytes
// the window saves).
func graceSavings(code ec.Code, cfg RepairMgrBenchConfig, res *RepairMgrCodecResult) error {
	// Graceful: restart inside the window.
	sys, victim, _, err := benchSystem(code, cfg, repairmgr.Config{
		SuspectAfter: benchSuspectAfter,
		GraceWindow:  benchGraceLong,
		PollInterval: benchPoll,
	})
	if err != nil {
		return err
	}
	before := sys.Cluster().Network().CrossRackBytes()
	killedAt := time.Now()
	if err := sys.KillDataNode(victim); err != nil {
		sys.Close()
		return err
	}
	if err := awaitNodeState(sys, victim, repairmgr.StateSuspect, benchGraceLong/2); err != nil {
		sys.Close()
		return err
	}
	if err := sys.RestartDataNode(victim); err != nil {
		sys.Close()
		return err
	}
	// Sleep out the would-have-been death deadline plus margin, then
	// assert nothing moved.
	time.Sleep(time.Until(killedAt.Add(benchSuspectAfter + benchGraceLong + 500*time.Millisecond)))
	st := sys.RepairManager().Status()
	res.GraceRestartRepairBytes = sys.Cluster().Network().CrossRackBytes() - before
	res.GraceAvoidedRepairs = st.AvoidedRepairs
	sys.Close()

	// Eager: grace zero, the same kill fires repairs at the suspect
	// deadline; restart lands after the fact.
	sys, victim, _, err = benchSystem(code, cfg, repairmgr.Config{
		SuspectAfter: benchSuspectAfter,
		GraceWindow:  0,
		PollInterval: benchPoll,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	before = sys.Cluster().Network().CrossRackBytes()
	if err := sys.KillDataNode(victim); err != nil {
		return err
	}
	if err := awaitHealthy(sys, 60*time.Second); err != nil {
		return err
	}
	if err := sys.RestartDataNode(victim); err != nil {
		return err
	}
	res.EagerRestartRepairBytes = sys.Cluster().Network().CrossRackBytes() - before
	res.GraceSavedBytes = res.EagerRestartRepairBytes - res.GraceRestartRepairBytes
	return nil
}

// loadUnderRepair runs scenario 3 once: closed-loop readers with a
// mid-run kill, the manager repairing in the background at the given
// throttle. Returns read latencies (ms), counters, and the recovery
// time.
func loadUnderRepair(code ec.Code, cfg RepairMgrBenchConfig, throttle float64) (readMs []float64, reads, errs, degraded int64, recovery float64, err error) {
	sys, victim, files, err := benchSystem(code, cfg, repairmgr.Config{
		SuspectAfter:      benchSuspectAfter,
		GraceWindow:       benchGraceShort,
		PollInterval:      benchPoll,
		RepairBytesPerSec: throttle,
	})
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	defer sys.Close()

	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	type worker struct {
		ms    []float64
		reads int64
		errs  int64
		c     Counters
	}
	workers := make([]worker, cfg.Clients)
	deadline := time.Now().Add(cfg.LoadDuration)
	// The kill arms a recovery stopwatch that polls health from the
	// moment of the kill, so recovery is kill-to-healthy — not
	// kill-to-end-of-load.
	recoveryCh := make(chan float64, 1)
	killTimer := time.AfterFunc(cfg.LoadDuration/4, func() {
		killedAt := time.Now()
		if err := sys.KillDataNode(victim); err != nil {
			recoveryCh <- -1
			return
		}
		go func() {
			stop := time.Now().Add(cfg.LoadDuration + 60*time.Second)
			for time.Now().Before(stop) {
				if sys.Cluster().Health().Healthy() && sys.RepairManager().QueueDepth() == 0 {
					recoveryCh <- time.Since(killedAt).Seconds()
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			recoveryCh <- -1
		}()
	})
	defer killTimer.Stop()

	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workers[w]
			cl, err := Dial(sys.NameAddr(), code)
			if err != nil {
				ws.errs++
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			for time.Now().Before(deadline) {
				name := names[rng.Intn(len(names))]
				t0 := time.Now()
				data, err := cl.ReadFile(name)
				if err != nil {
					ws.errs++
					continue
				}
				if !bytes.Equal(data, files[name]) {
					ws.errs++
					continue
				}
				ws.ms = append(ws.ms, float64(time.Since(t0))/1e6)
				ws.reads++
			}
			ws.c = cl.Counters()
		}(w)
	}
	wg.Wait()
	// Let the manager finish the background repair (throttled runs may
	// outlast the load window), then collect the stopwatch.
	if err := awaitHealthy(sys, cfg.LoadDuration+60*time.Second); err != nil {
		return nil, 0, 0, 0, 0, err
	}
	select {
	case recovery = <-recoveryCh:
		if recovery < 0 {
			return nil, 0, 0, 0, 0, errors.New("serve: recovery stopwatch never saw full health")
		}
	case <-time.After(5 * time.Second):
		return nil, 0, 0, 0, 0, errors.New("serve: recovery stopwatch never reported")
	}
	for i := range workers {
		readMs = append(readMs, workers[i].ms...)
		reads += workers[i].reads
		errs += workers[i].errs
		degraded += workers[i].c.DegradedBlocks
	}
	return readMs, reads, errs, degraded, recovery, nil
}

// RunRepairMgrBench measures the control plane per codec and replays
// the failure trace through its policies.
func RunRepairMgrBench(codecs []ec.Code, cfg RepairMgrBenchConfig, opts ...RepairMgrBenchOption) (*RepairMgrBenchReport, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(codecs) == 0 {
		return nil, errors.New("serve: no codecs to bench")
	}
	cfg = cfg.withDefaults(codecs)
	report := &RepairMgrBenchReport{
		Benchmark:           "repairmgr",
		Seed:                cfg.Seed,
		Racks:               cfg.Racks,
		MachinesPerRack:     cfg.MachinesPerRack,
		BlockBytes:          cfg.BlockSize,
		Files:               cfg.Files,
		FileBytes:           cfg.FileBytes,
		Clients:             cfg.Clients,
		LoadDurationSecs:    cfg.LoadDuration.Seconds(),
		ThrottleBytesPerSec: cfg.ThrottleBytesPerSec,
		SuspectAfterSecs:    benchSuspectAfter.Seconds(),
		GraceWindowSecs:     benchGraceLong.Seconds(),
		TraceDays:           cfg.TraceDays,
	}

	wcfg := workload.DefaultConfig()
	wcfg.Days = cfg.TraceDays
	wcfg.Seed = cfg.Seed
	trace, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	// The replay keeps its own default byte cap (50 MB/s): the trace
	// moves 256 MB production blocks, a scale apart from the live
	// clusters' kilobyte working set and its cap.
	rcfg := sim.DefaultManagerReplayConfig()
	rcfg.Contention.MaxDays = cfg.SimMaxDays
	// One shared fabric wide enough for the widest codec (every block
	// on its own rack plus a fresh rack for the rebuilt block), so the
	// replay compares codecs on identical ground.
	for _, code := range codecs {
		if need := code.TotalShards() + 2; need > rcfg.Contention.Topology.Racks {
			rcfg.Contention.Topology.Racks = need
		}
	}

	for _, code := range codecs {
		res := RepairMgrCodecResult{Codec: code.Name()}
		if err := timeToFullHealth(code, cfg, &res); err != nil {
			return nil, fmt.Errorf("serve: %s time-to-health: %w", code.Name(), err)
		}
		if err := graceSavings(code, cfg, &res); err != nil {
			return nil, fmt.Errorf("serve: %s grace savings: %w", code.Name(), err)
		}
		for _, throttled := range []bool{false, true} {
			throttle := 0.0
			if throttled {
				throttle = cfg.ThrottleBytesPerSec
			}
			ms, reads, errs, degraded, recovery, err := loadUnderRepair(code, cfg, throttle)
			if err != nil {
				return nil, fmt.Errorf("serve: %s load (throttled=%v): %w", code.Name(), throttled, err)
			}
			res.LoadReads += reads
			res.LoadErrors += errs
			res.LoadDegradedBlocks += degraded
			if throttled {
				res.ThrottledReadP50Millis = stats.Percentile(ms, 50)
				res.ThrottledReadP99Millis = stats.Percentile(ms, 99)
				res.ThrottledRecoverySecs = recovery
			} else {
				res.UnthrottledReadP50Millis = stats.Percentile(ms, 50)
				res.UnthrottledReadP99Millis = stats.Percentile(ms, 99)
				res.UnthrottledRecoverySecs = recovery
			}
		}
		replay, err := sim.RunManagerReplay(code, trace, rcfg)
		if err != nil {
			return nil, fmt.Errorf("serve: %s trace replay: %w", code.Name(), err)
		}
		res.Replay = replay
		report.Codecs = append(report.Codecs, res)
	}
	return report, nil
}

// CheckHealth is the acceptance gate: every codec recovered
// autonomously, the grace window moved zero bytes, and the load loop
// saw no client-visible errors.
func (r *RepairMgrBenchReport) CheckHealth() error {
	for _, c := range r.Codecs {
		if c.AutoRepairs == 0 {
			return fmt.Errorf("serve: %s: no autonomous repairs ran", c.Codec)
		}
		if c.GraceRestartRepairBytes != 0 {
			return fmt.Errorf("serve: %s: restart inside the grace window moved %d repair bytes, want 0",
				c.Codec, c.GraceRestartRepairBytes)
		}
		if c.LoadErrors > 0 {
			return fmt.Errorf("serve: %s: %d client-visible errors under background repair", c.Codec, c.LoadErrors)
		}
	}
	return nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *RepairMgrBenchReport) WriteJSON(path string) error { return writeJSON(path, r) }

// FormatTable renders the per-codec summary.
func (r *RepairMgrBenchReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %12s %12s %12s %12s %12s\n",
		"codec", "heal", "grace bytes", "saved bytes", "p99 free", "p99 capped", "replay saved")
	for _, c := range r.Codecs {
		saved := "-"
		if c.Replay != nil {
			saved = fmt.Sprintf("%5.1f%%", 100*c.Replay.GraceSavedFraction)
		}
		fmt.Fprintf(&b, "%-22s %9.2fs %12d %12d %10.1fms %10.1fms %12s\n",
			c.Codec, c.TimeToFullHealthSecs, c.GraceRestartRepairBytes, c.GraceSavedBytes,
			c.UnthrottledReadP99Millis, c.ThrottledReadP99Millis, saved)
	}
	return b.String()
}
