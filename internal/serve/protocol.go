// Package serve is the networked serving layer of the miniature DFS: a
// namenode daemon (file → block → stripe metadata, placement, failure
// control, block-fixer driver) and one datanode daemon per machine
// (replica range reads), all speaking a small framed RPC protocol over
// real TCP on localhost, plus a concurrent Client whose read path
// transparently falls back to degraded reads — reconstructing missing
// blocks through the codec's repair plan with every helper range
// fetched over the wire.
//
// The in-memory hdfs.Cluster remains the source of truth for metadata
// and block bytes; this package puts a real network between it and its
// clients, so "degraded reads under load" stop being simulated flows
// and become client-visible latency.
//
// # Wire protocol
//
// Every RPC is one request frame followed by one response frame on a
// persistent TCP connection (requests on a connection are serialised,
// clients pool one connection per server):
//
//	uint32 header length (big endian)
//	uint32 payload length (big endian)
//	header: JSON (request or response)
//	payload: raw bytes (block data; empty for most methods)
//
// The namenode answers metadata methods ("info", "stat", "blocks",
// "stripe"), mutations ("write", "raid", "fixer"), and failure control
// ("fail", "restore"); datanodes answer "dn.read" and "dn.ping".
// Errors travel as a string in the response header; the payload always
// carries data, never errors.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Frame size sanity bounds: a header is small JSON; a payload is at
// most one file write (tests and the load generator use kilobyte-to-
// megabyte payloads).
const (
	maxHeaderBytes  = 1 << 20
	maxPayloadBytes = 1 << 30
)

// Namenode RPC method names.
const (
	methodInfo    = "info"
	methodStat    = "stat"
	methodBlocks  = "blocks"
	methodStripe  = "stripe"
	methodWrite   = "write"
	methodRaid    = "raid"
	methodFixer   = "fixer"
	methodFail    = "fail"
	methodRestore = "restore"
)

// Datanode RPC method names.
const (
	methodDNRead = "dn.read"
	methodDNPing = "dn.ping"
)

// request is the header of one RPC call. One flat struct covers every
// method; unused fields stay at their zero value and are omitted from
// the JSON.
type request struct {
	Method  string `json:"method"`
	Name    string `json:"name,omitempty"`
	Block   int64  `json:"block,omitempty"`
	Offset  int64  `json:"offset,omitempty"`
	Length  int64  `json:"length,omitempty"`
	Machine int    `json:"machine,omitempty"`
	Stripe  int64  `json:"stripe,omitempty"`
}

// response is the header of one RPC reply.
type response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Size      int64          `json:"size,omitempty"`
	Raided    bool           `json:"raided,omitempty"`
	Blocks    []wireBlock    `json:"blocks,omitempty"`
	Stripe    *wireStripe    `json:"stripe,omitempty"`
	Codec     string         `json:"codec,omitempty"`
	BlockSize int64          `json:"block_size,omitempty"`
	DataNodes []string       `json:"datanodes,omitempty"`
	Fix       *wireFixReport `json:"fix,omitempty"`
}

// wireBlock is one block's client-visible metadata.
type wireBlock struct {
	ID        int64 `json:"id"`
	Size      int64 `json:"size"`
	Stripe    int64 `json:"stripe"` // -1 when unstriped
	StripePos int   `json:"stripe_pos"`
	Locations []int `json:"locations,omitempty"`
}

// wireStripe is one stripe's client-visible layout, enough for a
// client to plan and execute a degraded read.
type wireStripe struct {
	ID        int64     `json:"id"`
	ShardSize int64     `json:"shard_size"`
	Positions []wirePos `json:"positions"`
}

// wirePos is one stripe position: block id (-1 for a phantom zero
// block), logical size, and live holders.
type wirePos struct {
	Block     int64 `json:"block"`
	Size      int64 `json:"size"`
	Locations []int `json:"locations,omitempty"`
}

// wireFixReport is the summary of one block-fixer pass.
type wireFixReport struct {
	ScannedBlocks   int `json:"scanned_blocks"`
	RepairedStriped int `json:"repaired_striped"`
	ReReplicated    int `json:"re_replicated"`
	Unrecoverable   int `json:"unrecoverable"`
}

// RemoteError is an error reported by the far side of an RPC, as
// opposed to a transport failure. The client treats transport failures
// as "try another replica / refresh metadata"; remote errors are
// definitive answers.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// errFrameTooLarge guards against corrupt or hostile frame lengths.
var errFrameTooLarge = errors.New("serve: frame exceeds size bound")

// writeFrame marshals hdr and writes one length-prefixed frame.
func writeFrame(w io.Writer, hdr any, payload []byte) error {
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if len(hb) > maxHeaderBytes || len(payload) > maxPayloadBytes {
		return errFrameTooLarge
	}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(len(hb)))
	binary.BigEndian.PutUint32(pre[4:8], uint32(len(payload)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, unmarshalling the header into hdr and
// returning the payload.
func readFrame(r io.Reader, hdr any) ([]byte, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	hlen := binary.BigEndian.Uint32(pre[0:4])
	plen := binary.BigEndian.Uint32(pre[4:8])
	if hlen > maxHeaderBytes || plen > maxPayloadBytes {
		return nil, errFrameTooLarge
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(hb, hdr); err != nil {
		return nil, fmt.Errorf("serve: bad frame header: %w", err)
	}
	if plen == 0 {
		return nil, nil
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// okResponse and errResponse build reply headers.
func okResponse() *response { return &response{OK: true} }

func errResponse(err error) *response { return &response{Err: err.Error()} }
