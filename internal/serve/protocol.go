// Package serve is the networked serving layer of the miniature DFS: a
// namenode daemon (file → block → stripe metadata, placement, failure
// control, block-fixer driver) and one datanode daemon per machine
// (replica range reads), all speaking a small framed RPC protocol over
// real TCP on localhost, plus a concurrent Client whose read path
// transparently falls back to degraded reads — reconstructing missing
// blocks through the codec's repair plan with every helper range
// fetched over the wire.
//
// The in-memory hdfs.Cluster remains the source of truth for metadata
// and block bytes; this package puts a real network between it and its
// clients, so "degraded reads under load" stop being simulated flows
// and become client-visible latency.
//
// # Wire protocol
//
// Every RPC is one request frame followed by one response frame on a
// persistent TCP connection (requests on a connection are serialised,
// clients pool one connection per server):
//
//	uint32 header length (big endian)
//	uint32 payload length (big endian)
//	header: JSON (request or response)
//	payload: raw bytes (block data; empty for most methods)
//
// The namenode answers metadata methods ("info", "stat", "blocks",
// "stripe"), mutations ("write", "raid", "fixer"), and failure control
// ("fail", "restore"); datanodes answer "dn.read" and "dn.ping".
// Errors travel as a string in the response header; the payload always
// carries data, never errors.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Frame size sanity bounds: a header is small JSON; a payload is at
// most one file write (tests and the load generator use kilobyte-to-
// megabyte payloads).
const (
	maxHeaderBytes  = 1 << 20
	maxPayloadBytes = 1 << 30
)

// Namenode RPC method names.
const (
	methodInfo    = "info"
	methodStat    = "stat"
	methodBlocks  = "blocks"
	methodStripe  = "stripe"
	methodWrite   = "write"
	methodRaid    = "raid"
	methodFixer   = "fixer"
	methodFail    = "fail"
	methodRestore = "restore"
	// methodHeartbeat is sent BY datanode daemons TO the namenode on a
	// timer; the repair manager's failure detector consumes it.
	// methodRepairStatus returns the control plane's status snapshot.
	methodHeartbeat    = "dn.heartbeat"
	methodRepairStatus = "repair.status"
	// methodDebugTrace is answered generically by EVERY daemon (namenode
	// and datanodes alike): it dumps the process's buffered trace spans,
	// optionally filtered to one trace id. Errors when the system runs
	// without telemetry.
	methodDebugTrace = "debug.trace"
)

// Datanode RPC method names.
const (
	methodDNRead    = "dn.read"
	methodDNPing    = "dn.ping"
	methodDNPartial = "dn.partial"
)

// maxPartialNodes bounds the node count of one partial-sum tree: trees
// are at most one node per stripe position, so anything larger is
// corrupt or hostile. Keeps a recursive dn.partial from walking an
// attacker-sized structure.
const maxPartialNodes = 256

// request is the header of one RPC call. One flat struct covers every
// method; unused fields stay at their zero value and are omitted from
// the JSON.
type request struct {
	Method  string `json:"method"`
	Name    string `json:"name,omitempty"`
	Block   int64  `json:"block,omitempty"`
	Offset  int64  `json:"offset,omitempty"`
	Length  int64  `json:"length,omitempty"`
	Machine int    `json:"machine,omitempty"`
	Stripe  int64  `json:"stripe,omitempty"`

	// Partial is the dn.partial fold tree rooted at the addressed
	// datanode; Length carries the target (folded buffer) size.
	Partial *wirePartialNode `json:"partial,omitempty"`

	// Trace is the optional trace context of a sampled operation. The
	// SpanID it carries is the CALLER's span: a daemon minting a span
	// for the request uses it as the parent, then rewrites the field so
	// downstream calls made while handling (dn.partial child fetches)
	// parent correctly.
	Trace *telemetry.TraceContext `json:"trace,omitempty"`
	// TraceID filters a debug.trace dump to one trace (0 = everything).
	TraceID uint64 `json:"trace_id,omitempty"`
}

// wirePartialTerm is one local multiply-accumulate of a partial-sum
// fold: read [off, off+len) of the block, scale by the GF(2^8)
// coefficient, XOR into the partial buffer at target_off.
type wirePartialTerm struct {
	Block     int64 `json:"block"`
	Offset    int64 `json:"offset"`
	Length    int64 `json:"length"`
	TargetOff int64 `json:"target_off"`
	Coeff     byte  `json:"coeff"`
}

// wirePartialNode is one helper of a partial-sum fold tree: the
// datanode applies its terms locally, recursively collects each child's
// folded buffer from the child's daemon at addr, XORs everything, and
// returns one target-sized payload — so each tree edge carries exactly
// one buffer instead of the node's raw reads.
type wirePartialNode struct {
	Machine  int               `json:"machine"`
	Addr     string            `json:"addr,omitempty"` // filled for children; the addressed node ignores its own
	Terms    []wirePartialTerm `json:"terms,omitempty"`
	Children []wirePartialNode `json:"children,omitempty"`
}

// countNodes returns the tree's node count, capped at limit+1 so
// hostile structures stop early.
func (n *wirePartialNode) countNodes(limit int) int {
	count := 1
	for i := range n.Children {
		if count > limit {
			return count
		}
		count += n.Children[i].countNodes(limit - count)
	}
	return count
}

// validatePartial checks one partial-sum request's structural bounds
// before any I/O: a sane target size, a bounded tree, and every term
// folding inside the target.
func validatePartial(root *wirePartialNode, targetSize int64) error {
	if root == nil {
		return errors.New("serve: partial request missing tree")
	}
	if targetSize <= 0 || targetSize > maxPayloadBytes {
		return fmt.Errorf("serve: partial target size %d out of bounds", targetSize)
	}
	if n := root.countNodes(maxPartialNodes); n > maxPartialNodes {
		return fmt.Errorf("serve: partial tree exceeds %d nodes", maxPartialNodes)
	}
	var walk func(n *wirePartialNode) error
	walk = func(n *wirePartialNode) error {
		for _, t := range n.Terms {
			if t.Length <= 0 || t.Offset < 0 {
				return fmt.Errorf("serve: partial term reads [%d, %d+%d)", t.Offset, t.Offset, t.Length)
			}
			// Overflow-safe: TargetOff+Length can wrap int64 on hostile
			// input, so compare against targetSize-Length instead.
			if t.Length > targetSize || t.TargetOff < 0 || t.TargetOff > targetSize-t.Length {
				return fmt.Errorf("serve: partial term folds [%d, +%d) outside %d-byte target", t.TargetOff, t.Length, targetSize)
			}
		}
		for i := range n.Children {
			if n.Children[i].Addr == "" {
				return errors.New("serve: partial child missing address")
			}
			if err := walk(&n.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

// response is the header of one RPC reply.
type response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Size            int64             `json:"size,omitempty"`
	Raided          bool              `json:"raided,omitempty"`
	Blocks          []wireBlock       `json:"blocks,omitempty"`
	Stripe          *wireStripe       `json:"stripe,omitempty"`
	Codec           string            `json:"codec,omitempty"`
	BlockSize       int64             `json:"block_size,omitempty"`
	DataNodes       []string          `json:"datanodes,omitempty"`
	MachinesPerRack int               `json:"machines_per_rack,omitempty"`
	Fix             *wireFixReport    `json:"fix,omitempty"`
	Repair          *wireRepairStatus `json:"repair,omitempty"`
	// Spans answers debug.trace: the daemon's buffered spans (the
	// telemetry.Span JSON encoding is the wire form).
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// wireRepairStatus is the repair control plane's status snapshot —
// queue depth, per-node detector states, throttle and grace-window
// accounting, and the completion log that makes priority ordering
// externally observable.
type wireRepairStatus struct {
	Nodes           []wireNodeState    `json:"nodes"`
	QueueDepth      int                `json:"queue_depth"`
	QueueByErasures []wireTierDepth    `json:"queue_by_erasures,omitempty"`
	Paused          bool               `json:"paused,omitempty"`
	DegradedStripes int                `json:"degraded_stripes,omitempty"`
	DegradedBlocks  int                `json:"degraded_blocks,omitempty"`
	RepairsDone     int                `json:"repairs_done"`
	RepairedBytes   int64              `json:"repaired_bytes"`
	Unrecoverable   int                `json:"unrecoverable,omitempty"`
	AvoidedRepairs  int                `json:"avoided_repairs"`
	AvoidedBytes    int64              `json:"avoided_bytes"`
	LostBlocks      int                `json:"lost_blocks,omitempty"`
	ScrubSlices     int                `json:"scrub_slices,omitempty"`
	ScrubReplicas   int                `json:"scrub_replicas,omitempty"`
	ScrubCorrupt    int                `json:"scrub_corrupt,omitempty"`
	ThrottleBps     float64            `json:"throttle_bytes_per_sec,omitempty"`
	Completed       []wireCompletedFix `json:"completed,omitempty"`

	// UptimeSeconds is how long the manager has existed;
	// SecondsSincePoll how long ago the last Poll iteration ran (-1:
	// never polled). Together they distinguish a stalled poll loop from
	// an idle one. PollCount counts completed iterations.
	UptimeSeconds    float64 `json:"uptime_seconds"`
	SecondsSincePoll float64 `json:"seconds_since_poll"`
	PollCount        int64   `json:"poll_count,omitempty"`
}

// wireNodeState is one machine's failure-detector state.
type wireNodeState struct {
	Machine int    `json:"machine"`
	State   string `json:"state"` // alive | suspect | dead
}

// wireTierDepth is the queue depth at one erasure tier.
type wireTierDepth struct {
	Erasures int `json:"erasures"`
	Count    int `json:"count"`
}

// wireCompletedFix is one completed repair, in completion order.
type wireCompletedFix struct {
	Seq           int     `json:"seq"`
	Kind          string  `json:"kind"` // stripe | replicated
	Stripe        int64   `json:"stripe,omitempty"`
	Block         int64   `json:"block,omitempty"`
	Erasures      int     `json:"erasures"`
	Bytes         int64   `json:"bytes"`
	WaitSeconds   float64 `json:"wait_seconds"`
	Unrecoverable bool    `json:"unrecoverable,omitempty"`
}

// wireBlock is one block's client-visible metadata.
type wireBlock struct {
	ID        int64 `json:"id"`
	Size      int64 `json:"size"`
	Stripe    int64 `json:"stripe"` // -1 when unstriped
	StripePos int   `json:"stripe_pos"`
	Locations []int `json:"locations,omitempty"`
}

// wireStripe is one stripe's client-visible layout, enough for a
// client to plan and execute a degraded read.
type wireStripe struct {
	ID        int64     `json:"id"`
	ShardSize int64     `json:"shard_size"`
	Positions []wirePos `json:"positions"`
}

// wirePos is one stripe position: block id (-1 for a phantom zero
// block), logical size, and live holders.
type wirePos struct {
	Block     int64 `json:"block"`
	Size      int64 `json:"size"`
	Locations []int `json:"locations,omitempty"`
}

// wireFixReport is the summary of one block-fixer pass.
type wireFixReport struct {
	ScannedBlocks   int `json:"scanned_blocks"`
	RepairedStriped int `json:"repaired_striped"`
	ReReplicated    int `json:"re_replicated"`
	Unrecoverable   int `json:"unrecoverable"`
}

// RemoteError is an error reported by the far side of an RPC, as
// opposed to a transport failure. The client treats transport failures
// as "try another replica / refresh metadata"; remote errors are
// definitive answers.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// errFrameTooLarge guards against corrupt or hostile frame lengths.
var errFrameTooLarge = errors.New("serve: frame exceeds size bound")

// writeFrame marshals hdr and writes one length-prefixed frame.
func writeFrame(w io.Writer, hdr any, payload []byte) error {
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if len(hb) > maxHeaderBytes || len(payload) > maxPayloadBytes {
		return errFrameTooLarge
	}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(len(hb)))
	binary.BigEndian.PutUint32(pre[4:8], uint32(len(payload)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, unmarshalling the header into hdr and
// returning the payload.
func readFrame(r io.Reader, hdr any) ([]byte, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	hlen := binary.BigEndian.Uint32(pre[0:4])
	plen := binary.BigEndian.Uint32(pre[4:8])
	if hlen > maxHeaderBytes || plen > maxPayloadBytes {
		return nil, errFrameTooLarge
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(hb, hdr); err != nil {
		return nil, fmt.Errorf("serve: bad frame header: %w", err)
	}
	if plen == 0 {
		return nil, nil
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// okResponse and errResponse build reply headers.
func okResponse() *response { return &response{OK: true} }

func errResponse(err error) *response { return &response{Err: err.Error()} }
