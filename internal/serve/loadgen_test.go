package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/rs"
)

// TestRunLoadSmoke drives a short closed loop with a mid-run kill and
// asserts the acceptance bar: zero errors, progress on reads and
// writes, and a non-zero degraded share after the kill.
func TestRunLoadSmoke(t *testing.T) {
	code, err := core.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoad(code, LoadConfig{
		Clients:   3,
		Files:     4,
		Duration:  400 * time.Millisecond,
		KillAfter: 100 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("load run saw %d errors", res.Errors)
	}
	if res.Reads == 0 {
		t.Fatal("load run completed no reads")
	}
	if !res.Killed {
		t.Fatal("kill did not arm")
	}
	if res.DegradedBlocks == 0 {
		t.Fatal("mid-run kill produced no degraded reads")
	}
	if res.ReadP50Millis <= 0 || res.ReadP99Millis < res.ReadP50Millis {
		t.Fatalf("implausible latency percentiles p50=%v p99=%v", res.ReadP50Millis, res.ReadP99Millis)
	}
}

// TestRunBenchTwoCodecs checks the multi-codec harness produces one
// result per codec on the shared configuration and renders a table.
func TestRunBenchTwoCodecs(t *testing.T) {
	rsc, err := rs.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunBench([]ec.Code{rsc, pb}, LoadConfig{
		Clients:       2,
		Files:         3,
		Duration:      250 * time.Millisecond,
		KillAfter:     80 * time.Millisecond,
		WriteFraction: -1, // pure reads
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Codecs) != 2 {
		t.Fatalf("want 2 codec results, got %d", len(rep.Codecs))
	}
	for _, c := range rep.Codecs {
		if c.Errors != 0 {
			t.Fatalf("%s saw %d errors", c.Codec, c.Errors)
		}
		if c.Writes != 0 {
			t.Fatalf("pure-read run recorded %d writes", c.Writes)
		}
	}
	table := rep.FormatTable()
	if !strings.Contains(table, rsc.Name()) || !strings.Contains(table, pb.Name()) {
		t.Fatalf("table missing codec rows:\n%s", table)
	}
}
