// Live exposure: a loopback HTTP listener serving the registry at
// /metrics (Prometheus text format; ?format=json for the snapshot
// JSON) and the span store at /debug/traces (JSON; ?trace=<id> filters
// to one trace). Each serving daemon runs its own DebugServer, so
// scraping a datanode shows that process's view.
package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
)

// DebugServer is one process's observability endpoint.
type DebugServer struct {
	reg   *Registry
	spans *SpanStore
	ln    net.Listener
	srv   *http.Server
}

// NewDebugServer starts an HTTP listener on an ephemeral loopback port
// serving /metrics and /debug/traces. Either source may be nil (the
// endpoint then serves an empty view). Close releases the listener.
func NewDebugServer(reg *Registry, spans *SpanStore) (*DebugServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d := &DebugServer{reg: reg, spans: spans, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/debug/traces", d.handleTraces)
	d.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns when Close tears the listener down; the error is
		// the expected ErrServerClosed/closed-listener signal.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the listener address ("127.0.0.1:port").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and severs open scrape connections.
func (d *DebugServer) Close() error {
	return d.srv.Close()
}

// handleMetrics renders the registry snapshot: Prometheus text by
// default, the snapshot JSON with ?format=json.
func (d *DebugServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := d.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		blob, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(blob); err != nil {
			return // scraper hung up mid-body; nothing to recover
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(snap.PrometheusText()); err != nil {
		return
	}
}

// traceDump is the /debug/traces payload.
type traceDump struct {
	Spans   []Span `json:"spans"`
	Dropped int64  `json:"dropped,omitempty"`
}

// handleTraces dumps the buffered spans, optionally filtered to one
// trace id (?trace=<id>, decimal).
func (d *DebugServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	dump := traceDump{Dropped: d.spans.Dropped()}
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		dump.Spans = d.spans.Trace(id)
	} else {
		dump.Spans = d.spans.Spans()
	}
	if dump.Spans == nil {
		dump.Spans = []Span{}
	}
	blob, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(blob, '\n')); err != nil {
		return
	}
}
