// Package telemetry is the zero-dependency observability substrate of
// the repro system: a metrics registry of atomic counters, gauges, and
// fixed-bucket histograms with mergeable snapshots, plus request-trace
// spans buffered in bounded per-process stores. Every tier — the
// serving daemons, the repair control plane, the metadata shards, the
// stripe engine — registers its instruments here, and the serve layer
// exposes the result over /metrics (Prometheus text format and JSON)
// and /debug/traces.
//
// # Instrument naming
//
// Labels are embedded directly in the instrument name in Prometheus
// sample syntax — `rpc_requests_total{role="datanode",method="dn.read"}`
// — so the registry stays a flat name→instrument map and the text
// exposition is a straight render. Histograms get their `le` bucket
// label spliced into any existing label set at render time.
//
// # Nil safety
//
// Every instrument method and every Registry method is safe on a nil
// receiver and does nothing: call sites thread a possibly-nil *Registry
// unconditionally and pay one nil check, not a conditional at every
// increment. A disabled system runs the identical code path.
package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (no-op on a nil receiver or negative n —
// counters never go down).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets are the default histogram bounds for RPC latencies in
// seconds: half a millisecond through 2.5 s, roughly geometric.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// SizeBuckets are the default histogram bounds for payload sizes in
// bytes: 512 B through 16 MiB.
var SizeBuckets = []float64{512, 4096, 32768, 262144, 1 << 21, 1 << 24}

// Histogram is a fixed-bucket distribution: counts per upper bound plus
// an implicit +Inf bucket, with a running sum and total count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Count = h.count.Load()
	return s
}

// Registry is a concurrent-safe name→instrument map. Instruments are
// created on first use and shared thereafter: two callers asking for
// the same counter name increment the same atomic.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on
// a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterGauge binds a name to a function evaluated at snapshot time —
// the hook for folding existing atomics (lock-wait counters, queue
// depths) into the registry without double bookkeeping. Re-registering
// a name replaces the function. No-op on a nil registry.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored — the first
// registration wins). Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's captured state. Counts has one
// entry per bound plus a final +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time capture of a registry — the mergeable,
// JSON-marshalable unit the benchmarks embed and /metrics renders.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument, evaluating registered gauge
// functions. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	// Instruments are read outside the map lock: gauge functions may
	// themselves take locks (queue depths), and holding the registry
	// mutex across them invites ordering trouble.
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Merge returns the element-wise sum of two snapshots: counters and
// gauges add, histograms with identical bounds add bucket-wise (a
// histogram present on only one side carries over; mismatched bounds
// keep the receiver's). Use it to aggregate per-process snapshots into
// a system view.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(other.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range other.Histograms {
		prev, ok := out.Histograms[k]
		if !ok || !sameBounds(prev.Bounds, v.Bounds) {
			if !ok {
				out.Histograms[k] = v
			}
			continue
		}
		merged := HistogramSnapshot{
			Bounds: append([]float64(nil), prev.Bounds...),
			Counts: make([]int64, len(prev.Counts)),
			Sum:    prev.Sum + v.Sum,
			Count:  prev.Count + v.Count,
		}
		for i := range merged.Counts {
			merged.Counts[i] = prev.Counts[i]
			if i < len(v.Counts) {
				merged.Counts[i] += v.Counts[i]
			}
		}
		out.Histograms[k] = merged
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// splitName separates an instrument name into its metric base and the
// inner label text: `x_total{a="b"}` → ("x_total", `a="b"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := name[i:]
	inner = strings.TrimPrefix(inner, "{")
	inner = strings.TrimSuffix(inner, "}")
	return name[:i], inner
}

// formatFloat renders a float the way the Prometheus text format
// expects (shortest round-trip representation; +Inf spelled out).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format, instruments sorted by name, one # TYPE line per metric base.
func (s Snapshot) PrometheusText() []byte {
	var buf bytes.Buffer
	typed := make(map[string]bool)
	emitType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&buf, "# TYPE %s %s\n", base, kind)
		}
	}

	counterNames := sortedKeys(s.Counters)
	for _, name := range counterNames {
		base, _ := splitName(name)
		emitType(base, "counter")
		fmt.Fprintf(&buf, "%s %d\n", name, s.Counters[name])
	}
	gaugeNames := sortedKeys(s.Gauges)
	for _, name := range gaugeNames {
		base, _ := splitName(name)
		emitType(base, "gauge")
		fmt.Fprintf(&buf, "%s %s\n", name, formatFloat(s.Gauges[name]))
	}
	histNames := sortedKeys(s.Histograms)
	for _, name := range histNames {
		h := s.Histograms[name]
		base, labels := splitName(name)
		emitType(base, "histogram")
		withLE := func(le string) string {
			if labels == "" {
				return fmt.Sprintf(`%s_bucket{le="%s"}`, base, le)
			}
			return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, base, labels, le)
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&buf, "%s %d\n", withLE(formatFloat(bound)), cum)
		}
		fmt.Fprintf(&buf, "%s %d\n", withLE("+Inf"), h.Count)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&buf, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum))
		fmt.Fprintf(&buf, "%s_count%s %d\n", base, suffix, h.Count)
	}
	return buf.Bytes()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
