package telemetry

import (
	"strings"
	"testing"
)

func TestNewIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0 (reserved for no-parent)")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestSpanStoreBounded(t *testing.T) {
	s := NewSpanStore(4)
	for i := 1; i <= 10; i++ {
		s.Add(Span{SpanID: uint64(i)})
	}
	got := s.Spans()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	// Oldest first: 7, 8, 9, 10 survive.
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].SpanID != want {
			t.Fatalf("span %d = %d, want %d", i, got[i].SpanID, want)
		}
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped())
	}
}

func TestSpanStoreTraceFilter(t *testing.T) {
	s := NewSpanStore(16)
	s.Add(Span{TraceID: 1, SpanID: 1})
	s.Add(Span{TraceID: 2, SpanID: 2})
	s.Add(Span{TraceID: 1, SpanID: 3})
	got := s.Trace(1)
	if len(got) != 2 || got[0].SpanID != 1 || got[1].SpanID != 3 {
		t.Fatalf("trace filter wrong: %+v", got)
	}
}

func TestBuildTreeValid(t *testing.T) {
	spans := []Span{
		{TraceID: 9, SpanID: 1, Name: "root", StartUnixNano: 10},
		{TraceID: 9, SpanID: 2, ParentID: 1, Name: "a", StartUnixNano: 30},
		{TraceID: 9, SpanID: 3, ParentID: 1, Name: "b", StartUnixNano: 20},
		{TraceID: 9, SpanID: 4, ParentID: 3, Name: "b.1", StartUnixNano: 25},
	}
	root, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("bad root: %+v", root)
	}
	// Children sorted by start time: b (20) before a (30).
	if root.Children[0].Name != "b" || root.Children[1].Name != "a" {
		t.Fatalf("children unsorted: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	count := 0
	root.Walk(func(*SpanNode) { count++ })
	if count != 4 {
		t.Fatalf("walk visited %d, want 4", count)
	}
}

func TestBuildTreeRejects(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		want  string
	}{
		{"empty", nil, "no spans"},
		{"orphan", []Span{
			{SpanID: 1},
			{SpanID: 2, ParentID: 99},
		}, "orphan"},
		{"two roots", []Span{
			{SpanID: 1},
			{SpanID: 2},
		}, "multiple roots"},
		{"no root", []Span{
			{SpanID: 1, ParentID: 2},
			{SpanID: 2, ParentID: 1},
		}, "no root"},
		{"cycle", []Span{
			{SpanID: 1},
			{SpanID: 2, ParentID: 3},
			{SpanID: 3, ParentID: 2},
		}, "unreachable"},
		{"dup ids", []Span{
			{SpanID: 1},
			{SpanID: 1, ParentID: 1},
		}, "duplicate"},
	}
	for _, tc := range cases {
		if _, err := BuildTree(tc.spans); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
