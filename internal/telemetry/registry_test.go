package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Add(3)
	c.Inc()
	c.Add(-5) // counters never go down
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("ops_total"); again != c {
		t.Fatal("same name must return the same counter instance")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	r.RegisterGauge("derived", func() float64 { return 7 })
	snap := r.Snapshot()
	if snap.Counters["ops_total"] != 4 || snap.Gauges["depth"] != 2.0 || snap.Gauges["derived"] != 7 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("z", LatencyBuckets)
	h.Observe(1)
	r.RegisterGauge("f", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty: %+v", snap)
	}
	var s *SpanStore
	s.Add(Span{})
	if s.Spans() != nil || s.Dropped() != 0 {
		t.Fatal("nil span store must be empty")
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat_seconds"]
	wantCounts := []int64{1, 2, 1, 1}
	if len(snap.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, snap.Counts[i], w, snap)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if snap.Sum < 5.6 || snap.Sum > 5.61 {
		t.Fatalf("sum = %v, want ~5.605", snap.Sum)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(1)
	a.Histogram("h", []float64{1, 2}).Observe(0.5)
	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Counter("only_b").Add(1)
	b.Gauge("g").Set(4)
	b.Histogram("h", []float64{1, 2}).Observe(1.5)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["c"] != 5 || m.Counters["only_b"] != 1 {
		t.Fatalf("merged counters wrong: %+v", m.Counters)
	}
	if m.Gauges["g"] != 5 {
		t.Fatalf("merged gauge = %v, want 5", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rpc_requests_total{role="namenode",method="info"}`).Add(7)
	r.Gauge("queue_depth").Set(3)
	r.Histogram(`rpc_request_seconds{method="info"}`, []float64{0.1, 1}).Observe(0.05)
	text := string(r.Snapshot().PrometheusText())

	for _, want := range []string{
		"# TYPE rpc_requests_total counter",
		`rpc_requests_total{role="namenode",method="info"} 7`,
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"# TYPE rpc_request_seconds histogram",
		`rpc_request_seconds_bucket{method="info",le="0.1"} 1`,
		`rpc_request_seconds_bucket{method="info",le="+Inf"} 1`,
		`rpc_request_seconds_sum{method="info"} 0.05`,
		`rpc_request_seconds_count{method="info"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Histogram("h", []float64{1}).Observe(2)
	blob, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// Concurrent increments through the registry must be race-free and
// lose nothing (run under -race in CI).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", LatencyBuckets).Observe(0.01)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != workers*perWorker {
		t.Fatalf("counter = %d, want %d", snap.Counters["c"], workers*perWorker)
	}
	if snap.Gauges["g"] != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", snap.Gauges["g"], workers*perWorker)
	}
	if snap.Histograms["h"].Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", snap.Histograms["h"].Count, workers*perWorker)
	}
}
