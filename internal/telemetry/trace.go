// Request tracing: one sampled operation (a degraded read) mints a
// TraceContext that rides the RPC header through every hop — namenode
// metadata calls, datanode range reads, and the recursive dn.partial
// child fetches of a partial-sum fold tree — so the spans recorded
// along the way assemble into the operation's complete tree. Spans are
// buffered in a bounded per-process SpanStore and collected afterwards
// over the serve layer's debug.trace RPC.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TraceContext is the trace header carried by a sampled RPC: the trace
// it belongs to, the span id of the CALLER (the server minting a span
// for the request uses it as the parent), and the sampling decision.
// JSON tags are the wire encoding the serve layer embeds verbatim.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Sampled bool   `json:"sampled,omitempty"`
}

// Span is one recorded hop of a trace. ParentID zero marks a root.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Name is the operation ("degraded_read", an RPC method name);
	// Process identifies the recording daemon ("client", "namenode",
	// "datanode-3").
	Name    string `json:"name"`
	Process string `json:"process,omitempty"`
	// StartUnixNano and DurationNanos time the hop; Bytes is the
	// payload it delivered (response payload for a server span, bytes
	// received for a client span).
	StartUnixNano int64  `json:"start_unix_nano,omitempty"`
	DurationNanos int64  `json:"duration_nanos,omitempty"`
	Bytes         int64  `json:"bytes,omitempty"`
	Err           string `json:"err,omitempty"`
}

// idCounter feeds NewID. Every daemon of a test system lives in one OS
// process, so a process-wide counter guarantees span/trace uniqueness
// across all of them; starting at 1 keeps 0 meaning "no parent".
var idCounter atomic.Uint64

// NewID returns a process-unique non-zero id.
func NewID() uint64 { return idCounter.Add(1) }

// DefaultSpanBuffer is the default SpanStore capacity.
const DefaultSpanBuffer = 4096

// SpanStore is a bounded ring of recorded spans: one per process, so a
// runaway sampler degrades to dropped-oldest, never to unbounded
// memory. Safe for concurrent use; nil-receiver methods no-op.
type SpanStore struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped int64
}

// NewSpanStore builds a store holding at most capacity spans
// (DefaultSpanBuffer when capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanBuffer
	}
	return &SpanStore{buf: make([]Span, 0, capacity)}
}

// Add records one span, evicting the oldest when full. No-op on nil.
func (s *SpanStore) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
		return
	}
	s.buf[s.next] = sp
	s.next = (s.next + 1) % cap(s.buf)
	s.full = true
	s.dropped++
}

// Spans returns every buffered span, oldest first (nil store: none).
func (s *SpanStore) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// Trace returns the buffered spans of one trace id.
func (s *SpanStore) Trace(traceID uint64) []Span {
	var out []Span
	for _, sp := range s.Spans() {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Dropped reports how many spans eviction discarded.
func (s *SpanStore) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SpanNode is one node of an assembled span tree.
type SpanNode struct {
	Span
	Children []*SpanNode
}

// BuildTree assembles spans (all of one trace) into their tree and
// validates the structure: exactly one root, unique span ids, every
// parent present (no orphans), and every span reachable from the root
// (no cycles). This is the property the trace-propagation tests pin.
func BuildTree(spans []Span) (*SpanNode, error) {
	if len(spans) == 0 {
		return nil, errors.New("telemetry: no spans")
	}
	nodes := make(map[uint64]*SpanNode, len(spans))
	for _, sp := range spans {
		if sp.SpanID == 0 {
			return nil, fmt.Errorf("telemetry: span %q has zero id", sp.Name)
		}
		if _, dup := nodes[sp.SpanID]; dup {
			return nil, fmt.Errorf("telemetry: duplicate span id %d", sp.SpanID)
		}
		nodes[sp.SpanID] = &SpanNode{Span: sp}
	}
	var root *SpanNode
	for _, n := range nodes {
		if n.ParentID == 0 {
			if root != nil {
				return nil, fmt.Errorf("telemetry: multiple roots (spans %d and %d)", root.SpanID, n.SpanID)
			}
			root = n
			continue
		}
		parent, ok := nodes[n.ParentID]
		if !ok {
			return nil, fmt.Errorf("telemetry: span %d orphaned (parent %d missing)", n.SpanID, n.ParentID)
		}
		parent.Children = append(parent.Children, n)
	}
	if root == nil {
		return nil, errors.New("telemetry: no root span")
	}
	// Deterministic child order for renderers and tests.
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.StartUnixNano != b.StartUnixNano {
				return a.StartUnixNano < b.StartUnixNano
			}
			return a.SpanID < b.SpanID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sortChildren(root)
	// Reachability: with one root and no orphans, an unreachable span
	// can only sit on a parent cycle.
	seen := 0
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		seen++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if seen != len(nodes) {
		return nil, fmt.Errorf("telemetry: %d of %d spans unreachable from root (parent cycle)", len(nodes)-seen, len(nodes))
	}
	return root, nil
}

// Walk visits the tree depth-first, root included.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
