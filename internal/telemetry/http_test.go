package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrapes_total").Add(2)
	spans := NewSpanStore(8)
	spans.Add(Span{TraceID: 5, SpanID: 1, Name: "root"})
	spans.Add(Span{TraceID: 6, SpanID: 2, Name: "other"})

	d, err := NewDebugServer(reg, spans)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "scrapes_total 2") {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if snap.Counters["scrapes_total"] != 2 {
		t.Fatalf("json snapshot wrong: %+v", snap)
	}

	code, body = get(t, base+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	var dump struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("trace dump has %d spans, want 2", len(dump.Spans))
	}

	code, body = get(t, base+"/debug/traces?trace=5")
	if code != http.StatusOK {
		t.Fatalf("filtered traces = %d", code)
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Name != "root" {
		t.Fatalf("trace filter wrong: %+v", dump.Spans)
	}

	code, _ = get(t, base+"/debug/traces?trace=notanumber")
	if code != http.StatusBadRequest {
		t.Fatalf("bad trace id = %d, want 400", code)
	}
}
