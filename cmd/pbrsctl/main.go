// Command pbrsctl encodes, verifies, and repairs files on disk with any
// of the reproduction's codecs — a small operational tool mirroring what
// HDFS-RAID does to blocks, at file granularity.
//
// Usage:
//
//	pbrsctl encode -code pbrs -k 10 -r 4 -in FILE -out DIR
//	pbrsctl verify -dir DIR
//	pbrsctl corrupt -dir DIR -shard N
//	pbrsctl repair -dir DIR
//	pbrsctl decode -dir DIR -out FILE
//
// encode writes FILE as DIR/shard.000 ... plus DIR/manifest.json;
// corrupt deletes a shard (simulating a lost machine); repair
// reconstructs all missing shards using the codec's repair plans,
// printing how many bytes were read; decode reassembles the original
// file from the data shards.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/stats"
)

// manifest records what encode wrote, so the other subcommands can
// rebuild the codec and file geometry.
type manifest struct {
	Code      string `json:"code"` // rs | pbrs | lrc
	K         int    `json:"k"`
	R         int    `json:"r"`
	Locals    int    `json:"locals,omitempty"`
	FileName  string `json:"file_name"`
	FileSize  int64  `json:"file_size"`
	ShardSize int64  `json:"shard_size"`
	Shards    int    `json:"shards"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "corrupt":
		err = cmdCorrupt(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbrsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pbrsctl <encode|verify|corrupt|repair|decode> [flags]
  encode  -in FILE -out DIR [-code rs|pbrs|lrc] [-k 10] [-r 4] [-locals 2]
  verify  -dir DIR
  corrupt -dir DIR -shard N
  repair  -dir DIR
  decode  -dir DIR -out FILE`)
}

func buildCodec(m manifest) (repro.Codec, error) {
	switch m.Code {
	case "rs":
		return repro.NewRS(m.K, m.R)
	case "pbrs":
		return repro.NewPiggybackedRS(m.K, m.R)
	case "lrc":
		return repro.NewLRC(m.K, m.R, m.Locals)
	default:
		return nil, fmt.Errorf("unknown code %q", m.Code)
	}
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard.%03d", i))
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

func loadManifest(dir string) (manifest, repro.Codec, error) {
	var m manifest
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return m, nil, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, nil, fmt.Errorf("parsing manifest: %w", err)
	}
	code, err := buildCodec(m)
	if err != nil {
		return m, nil, err
	}
	return m, code, nil
}

// loadShards reads present shard files; missing ones stay nil.
func loadShards(dir string, m manifest) ([][]byte, error) {
	shards := make([][]byte, m.Shards)
	for i := range shards {
		raw, err := os.ReadFile(shardPath(dir, i))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		shards[i] = raw
	}
	return shards, nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output directory")
	codeName := fs.String("code", "pbrs", "codec: rs, pbrs, or lrc")
	k := fs.Int("k", 10, "data shards")
	r := fs.Int("r", 4, "parity shards")
	locals := fs.Int("locals", 2, "local groups (lrc only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("encode requires -in and -out")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	m := manifest{Code: *codeName, K: *k, R: *r, Locals: *locals,
		FileName: filepath.Base(*in), FileSize: int64(len(data))}
	code, err := buildCodec(m)
	if err != nil {
		return err
	}
	shards, err := repro.SplitShards(data, code.DataShards(), code.TotalShards()-code.DataShards(), code.MinShardSize())
	if err != nil {
		return err
	}
	if err := code.Encode(shards); err != nil {
		return err
	}
	m.Shards = code.TotalShards()
	m.ShardSize = int64(len(shards[0]))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for i, s := range shards {
		if err := os.WriteFile(shardPath(*out, i), s, 0o644); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manifestPath(*out), raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("encoded %s (%s) with %s: %d shards of %s in %s\n",
		m.FileName, stats.FormatBytes(m.FileSize), code.Name(), m.Shards,
		stats.FormatBytes(m.ShardSize), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, code, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	shards, err := loadShards(*dir, m)
	if err != nil {
		return err
	}
	missing := 0
	for _, s := range shards {
		if s == nil {
			missing++
		}
	}
	if missing > 0 {
		fmt.Printf("%d of %d shards missing; run 'pbrsctl repair -dir %s'\n", missing, m.Shards, *dir)
		return nil
	}
	ok, err := code.Verify(shards)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("parity verification FAILED: shards are corrupt")
	}
	fmt.Printf("all %d shards present, parity verifies (%s)\n", m.Shards, code.Name())
	return nil
}

func cmdCorrupt(args []string) error {
	fs := flag.NewFlagSet("corrupt", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	shard := fs.Int("shard", -1, "shard index to delete")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, _, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	if *shard < 0 || *shard >= m.Shards {
		return fmt.Errorf("shard must be in [0, %d)", m.Shards)
	}
	if err := os.Remove(shardPath(*dir, *shard)); err != nil {
		return err
	}
	fmt.Printf("deleted shard %d (simulating a failed machine)\n", *shard)
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, code, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	shards, err := loadShards(*dir, m)
	if err != nil {
		return err
	}
	alive := func(i int) bool { return i >= 0 && i < len(shards) && shards[i] != nil }
	var readBytes int64
	fetch := func(req repro.ReadRequest) ([]byte, error) {
		s := shards[req.Shard]
		if s == nil {
			return nil, fmt.Errorf("shard %d missing", req.Shard)
		}
		readBytes += req.Length
		return s[req.Offset : req.Offset+req.Length], nil
	}
	repaired := 0
	for i := range shards {
		if shards[i] != nil {
			continue
		}
		got, err := code.ExecuteRepair(i, m.ShardSize, alive, fetch)
		if err != nil {
			return fmt.Errorf("repairing shard %d: %w", i, err)
		}
		if err := os.WriteFile(shardPath(*dir, i), got, 0o644); err != nil {
			return err
		}
		shards[i] = got
		repaired++
		fmt.Printf("repaired shard %d\n", i)
	}
	if repaired == 0 {
		fmt.Println("nothing to repair")
		return nil
	}
	fmt.Printf("repaired %d shards reading %s (RS baseline for one shard: %s)\n",
		repaired, stats.FormatBytes(readBytes),
		stats.FormatBytes(int64(code.DataShards())*m.ShardSize))
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("decode requires -out")
	}
	m, code, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	shards, err := loadShards(*dir, m)
	if err != nil {
		return err
	}
	if err := code.Reconstruct(shards); err != nil {
		return err
	}
	data, err := repro.JoinShards(shards, code.DataShards(), int(m.FileSize))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %s (%s) to %s\n", m.FileName, stats.FormatBytes(m.FileSize), *out)
	return nil
}
