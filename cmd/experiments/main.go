// Command experiments runs every experiment in the reproduction and
// prints a paper-vs-measured report: one section per figure, table, or
// quantitative claim of the paper. EXPERIMENTS.md is generated from this
// output.
//
// Usage:
//
//	experiments [-days N] [-seed S] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/stats"
)

func main() {
	days := flag.Int("days", 96, "trace length in days (longer = tighter medians)")
	seed := flag.Int64("seed", 1, "trace seed")
	quick := flag.Bool("quick", false, "shrink the §2.2 simulation for fast runs")
	flag.Parse()

	if err := run(*days, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(days int, seed int64, quick bool) error {
	rsc, err := repro.NewRS(10, 4)
	if err != nil {
		return err
	}
	pb, err := repro.NewPiggybackedRS(10, 4)
	if err != nil {
		return err
	}
	lc, err := repro.NewLRC(10, 4, 2)
	if err != nil {
		return err
	}

	fmt.Println("================================================================")
	fmt.Println(" Reproduction report: HotStorage 2013 Facebook warehouse study")
	fmt.Println("================================================================")

	if err := fig1(rsc); err != nil {
		return err
	}
	if err := fig2(rsc); err != nil {
		return err
	}

	cfg := repro.DefaultTraceConfig()
	cfg.Days = days
	cfg.Seed = seed
	tr, err := repro.GenerateTrace(cfg)
	if err != nil {
		return err
	}

	if err := fig3a(tr); err != nil {
		return err
	}
	if err := sec22(quick); err != nil {
		return err
	}
	cmp, err := fig3b(rsc, pb, tr)
	if err != nil {
		return err
	}
	if err := fig4(); err != nil {
		return err
	}
	if err := sec32Savings(rsc, pb, lc); err != nil {
		return err
	}
	if err := sec32Traffic(cmp); err != nil {
		return err
	}
	if err := sec32RecoveryTime(cmp); err != nil {
		return err
	}
	if err := sec32MTTDL(rsc, pb, lc); err != nil {
		return err
	}
	storageOverheads(rsc, pb, lc)
	if err := sec22Backlog(cmp); err != nil {
		return err
	}
	if err := sec4Layout(pb, rsc); err != nil {
		return err
	}
	if err := sec5Bounds(pb); err != nil {
		return err
	}
	return nil
}

func sec22Backlog(cmp *repro.Comparison) error {
	fmt.Println("\n--- §2.2 (extension): recovery vs foreground bandwidth ---")
	budget := int64(170 * stats.TB)
	rsBL, err := repro.RecoveryBacklog(cmp.Baseline, budget)
	if err != nil {
		return err
	}
	pbBL, err := repro.RecoveryBacklog(cmp.Candidate, budget)
	if err != nil {
		return err
	}
	fmt.Printf("paper   : recovery traffic crowds out foreground map-reduce jobs\n")
	fmt.Printf("measured: throttled at %s/day over %d days —\n", stats.FormatBytes(budget), len(rsBL.Days))
	fmt.Printf("          rs  : %d saturated days, peak backlog %s, mean utilization %.0f%%\n",
		rsBL.SaturatedDays, stats.FormatBytes(rsBL.PeakBacklogBytes), 100*rsBL.MeanUtilization)
	fmt.Printf("          pbrs: %d saturated days, peak backlog %s, mean utilization %.0f%%\n",
		pbBL.SaturatedDays, stats.FormatBytes(pbBL.PeakBacklogBytes), 100*pbBL.MeanUtilization)
	return nil
}

func sec4Layout(pb *repro.PiggybackedRS, rsc *repro.RS) error {
	fmt.Println("\n--- §4 (future work, later Hitchhiker): on-disk substripe layout ---")
	const block = int64(256 << 20)
	pbPlan, err := pb.PlanRepair(0, block, repro.AllAliveExcept(0))
	if err != nil {
		return err
	}
	rsPlan, err := rsc.PlanRepair(0, block, repro.AllAliveExcept(0))
	if err != nil {
		return err
	}
	_, coupled, err := repro.PlanDiskGeometry(repro.LayoutCoupled, pbPlan)
	if err != nil {
		return err
	}
	_, inter, err := repro.PlanDiskGeometry(repro.LayoutInterleaved, pbPlan)
	if err != nil {
		return err
	}
	_, rsDisk, err := repro.PlanDiskGeometry(repro.LayoutCoupled, rsPlan)
	if err != nil {
		return err
	}
	fmt.Printf("paper   : code 'reduces the amount of read' — requires substripe-contiguous layout\n")
	fmt.Printf("measured: disk bytes per data-block repair: rs %s | pbrs coupled %s | pbrs interleaved %s\n",
		stats.FormatBytes(rsDisk), stats.FormatBytes(coupled), stats.FormatBytes(inter))
	fmt.Printf("          naive byte-interleaving would EXCEED the RS disk read — hop-and-couple fixes it\n")
	return nil
}

func sec5Bounds(pb *repro.PiggybackedRS) error {
	fmt.Println("\n--- §5 (related work): regenerating-code lower bounds ---")
	p := repro.RegeneratingParams{N: 14, K: 10, D: 13}
	msr, err := repro.MSRRepairFraction(p)
	if err != nil {
		return err
	}
	dataFrac := pb.AverageDataRepairFraction()
	fmt.Printf("paper   : regenerating codes achieve lower download but restrict parameters\n")
	fmt.Printf("measured: repair floor (MSR, storage-optimal) = %.3f of stripe data; rs = 1.000;\n", msr)
	fmt.Printf("          piggybacked-rs = %.3f (data avg) — captures %.0f%% of the available saving\n",
		dataFrac, 100*(1-dataFrac)/(1-msr))
	return nil
}

func fig1(rsc *repro.RS) error {
	fmt.Println("\n--- Fig. 1: network amplification of (2,2) RS recovery ---")
	code, err := repro.NewRS(2, 2)
	if err != nil {
		return err
	}
	plan, err := code.PlanRepair(0, 1, repro.AllAliveExcept(0))
	if err != nil {
		return err
	}
	fmt.Printf("paper   : recovering one unit moves 2 units through TOR + AS switches\n")
	fmt.Printf("measured: repair plan reads %d units from %d nodes\n", plan.TotalBytes(), plan.Sources())
	_ = rsc
	return nil
}

func fig2(rsc *repro.RS) error {
	fmt.Println("\n--- Fig. 2: (10,4) striping layout ---")
	data := make([]byte, 10*64)
	for i := range data {
		data[i] = byte(i * 31)
	}
	shards, err := repro.SplitShards(data, 10, 4, rsc.MinShardSize())
	if err != nil {
		return err
	}
	if err := rsc.Encode(shards); err != nil {
		return err
	}
	ok, err := rsc.Verify(shards)
	if err != nil {
		return err
	}
	fmt.Printf("paper   : 10 data blocks encode to 4 parity blocks, byte-level striping\n")
	fmt.Printf("measured: stripe of %d+%d shards, parity verifies: %v\n",
		rsc.DataShards(), rsc.ParityShards(), ok)
	return nil
}

func fig3a(tr *repro.Trace) error {
	fmt.Println("\n--- Fig. 3a: machines unavailable > 15 min per day ---")
	series := tr.UnavailableSeries()
	f := stats.IntsToFloats(series)
	fmt.Printf("paper   : median > 50 events/day, spikes toward ~350\n")
	fmt.Printf("measured: median %.0f, min %.0f, max %.0f over %d days\n",
		stats.Median(f), stats.Min(f), stats.Max(f), len(series))
	fmt.Print("day series: ")
	for i, v := range series {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(v)
		if i == 23 {
			break
		}
	}
	fmt.Println(" ... (first 24 days)")
	return nil
}

func sec22(quick bool) error {
	fmt.Println("\n--- §2.2 item 2: missing blocks per affected stripe ---")
	cfg := repro.DefaultStripeFailureConfig()
	if quick {
		cfg.Stripes = 20000
		cfg.Windows = 2
	}
	dist, err := repro.MissingBlockDistribution(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("paper   : 1 missing: 98.08%%   2 missing: 1.87%%   >=3 missing: 0.05%%\n")
	fmt.Printf("measured: 1 missing: %5.2f%%   2 missing: %4.2f%%   >=3 missing: %4.2f%%  (%d affected stripes)\n",
		100*dist.Fraction(1), 100*dist.Fraction(2), 100*dist.FractionAtLeast(3), dist.TotalAffected)
	return nil
}

func fig3b(rsc *repro.RS, pb *repro.PiggybackedRS, tr *repro.Trace) (*repro.Comparison, error) {
	fmt.Println("\n--- Fig. 3b: blocks reconstructed and cross-rack bytes per day ---")
	cmp, err := repro.CompareCodecs(rsc, pb, tr)
	if err != nil {
		return nil, err
	}
	b := cmp.Baseline
	fmt.Printf("paper   : median 95,500 blocks/day; median > 180 TB cross-rack/day (RS)\n")
	fmt.Printf("measured: median %.0f blocks/day; median %s cross-rack/day (%s)\n",
		b.MedianBlocksPerDay, stats.FormatBytes(int64(b.MedianCrossRackBytes)), b.CodeName)
	fmt.Printf("          day range: %s .. %s cross-rack\n",
		stats.FormatBytes(minDayBytes(b)), stats.FormatBytes(maxDayBytes(b)))
	return cmp, nil
}

func minDayBytes(r *repro.StudyResult) int64 {
	m := r.Days[0].CrossRackBytes
	for _, d := range r.Days {
		if d.CrossRackBytes < m {
			m = d.CrossRackBytes
		}
	}
	return m
}

func maxDayBytes(r *repro.StudyResult) int64 {
	m := r.Days[0].CrossRackBytes
	for _, d := range r.Days {
		if d.CrossRackBytes > m {
			m = d.CrossRackBytes
		}
	}
	return m
}

func fig4() error {
	fmt.Println("\n--- Fig. 4 / Example 1: toy (2,2) piggybacked code ---")
	code, err := repro.NewPiggybackedRS(2, 2)
	if err != nil {
		return err
	}
	plan, err := code.PlanRepair(0, 2, repro.AllAliveExcept(0))
	if err != nil {
		return err
	}
	fmt.Printf("paper   : node 1 recovered with 3 bytes instead of 4\n")
	fmt.Printf("measured: repair of node 1 downloads %d bytes (stripe stores 2 bytes/node)\n",
		plan.TotalBytes())
	return nil
}

func sec32Savings(rsc *repro.RS, pb *repro.PiggybackedRS, lc *repro.LRC) error {
	fmt.Println("\n--- §3.1/§3.2: single-block recovery download, (10,4), per position ---")
	const shard = 256 << 20
	fmt.Printf("%-22s", "position:")
	for i := 0; i < 14; i++ {
		fmt.Printf("%6d", i)
	}
	fmt.Println("   avg(data)  avg(all)")
	for _, c := range []repro.Codec{rsc, pb} {
		per, avg, err := repro.RepairFraction(c, shard)
		if err != nil {
			return err
		}
		var dataAvg float64
		for i := 0; i < c.DataShards(); i++ {
			dataAvg += per[i]
		}
		dataAvg /= float64(c.DataShards())
		fmt.Printf("%-22s", c.Name()+":")
		for i := 0; i < 14; i++ {
			fmt.Printf("%6.2f", per[i])
		}
		fmt.Printf("   %8.3f  %8.3f\n", dataAvg, avg)
	}
	fmt.Printf("paper   : piggybacked code saves ~30%% on average for single block failures\n")
	_, pbAvg, _ := repro.RepairFraction(pb, shard)
	fmt.Printf("measured: savings %.1f%% averaged over data blocks, %.1f%% over all 14 blocks\n",
		100*(1-pb.AverageDataRepairFraction()), 100*(1-pbAvg))
	_, lcAvg, _ := repro.RepairFraction(lc, shard)
	fmt.Printf("context : %s repairs at %.3f of RS but stores %.1fx (not MDS, §5)\n",
		lc.Name(), lcAvg, lc.StorageOverhead())
	return nil
}

func sec32Traffic(cmp *repro.Comparison) error {
	fmt.Println("\n--- §3.2: projected cross-rack traffic reduction ---")
	saved := cmp.DailySavingsBytes()
	fmt.Printf("paper   : replacing RS with Piggybacked-RS saves \"close to fifty\" TB/day\n")
	fmt.Printf("measured: %s/day saved (%.1f%% of recovery traffic) on the same trace\n",
		stats.FormatBytes(int64(saved)), 100*cmp.SavingsFraction())
	fmt.Printf("          RS: %s/day   Piggybacked-RS: %s/day (means)\n",
		stats.FormatBytes(int64(cmp.Baseline.MeanCrossRackBytesPerDay())),
		stats.FormatBytes(int64(cmp.Candidate.MeanCrossRackBytesPerDay())))
	return nil
}

func sec32RecoveryTime(cmp *repro.Comparison) error {
	fmt.Println("\n--- §3.2: time taken for recovery ---")
	fmt.Printf("paper   : more helpers, fewer bytes => recovery no slower (bandwidth-bound)\n")
	fmt.Printf("measured: mean per-block recovery %v (RS) vs %v (Piggybacked-RS)\n",
		cmp.Baseline.MeanRecoveryTimePerBlock().Round(1000000),
		cmp.Candidate.MeanRecoveryTimePerBlock().Round(1000000))
	const ms = 1000000
	fmt.Printf("          percentiles (RS)  : P50 %v  P95 %v  P99 %v\n",
		cmp.Baseline.RecoveryTimePercentile(50).Round(ms),
		cmp.Baseline.RecoveryTimePercentile(95).Round(ms),
		cmp.Baseline.RecoveryTimePercentile(99).Round(ms))
	fmt.Printf("          percentiles (PBRS): P50 %v  P95 %v  P99 %v\n",
		cmp.Candidate.RecoveryTimePercentile(50).Round(ms),
		cmp.Candidate.RecoveryTimePercentile(95).Round(ms),
		cmp.Candidate.RecoveryTimePercentile(99).Round(ms))
	return nil
}

func sec32MTTDL(rsc *repro.RS, pb *repro.PiggybackedRS, lc *repro.LRC) error {
	fmt.Println("\n--- §3.2: reliability (MTTDL) ---")
	const block = 256 << 20
	p := repro.DefaultReliabilityParams()
	rep3, err := repro.ReplicationSystem(3, block)
	if err != nil {
		return err
	}
	systems := []repro.ReliabilitySystem{rep3}
	for _, c := range []repro.Codec{rsc, pb, lc} {
		sys, err := repro.CodeSystem(c, block)
		if err != nil {
			return err
		}
		systems = append(systems, sys)
	}
	fmt.Printf("paper   : MTTDL(Piggybacked-RS) >= MTTDL(RS); both >> replication per byte\n")
	fmt.Printf("%-22s %14s %10s\n", "system", "MTTDL (years)", "overhead")
	for _, sys := range systems {
		years, err := repro.MTTDLYears(sys, p)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %14.3g %9.1fx\n", sys.Name, years, sys.StorageOverhead)
	}
	return nil
}

func storageOverheads(rsc *repro.RS, pb *repro.PiggybackedRS, lc *repro.LRC) {
	fmt.Println("\n--- §1/§2.1: storage overhead ---")
	fmt.Printf("paper   : (10,4) RS stores 1.4x vs 3x under replication\n")
	fmt.Printf("measured: rs=%.1fx piggybacked-rs=%.1fx lrc=%.1fx replication=3.0x\n",
		rsc.StorageOverhead(), pb.StorageOverhead(), lc.StorageOverhead())
}
