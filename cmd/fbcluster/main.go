// Command fbcluster reproduces the paper's measurement study (§2): it
// generates (or loads) a calibrated failure trace for the warehouse
// cluster and prints the Fig. 3a and Fig. 3b day series, their medians,
// and the §2.2 stripe-failure distribution, under a selectable erasure
// code.
//
// Usage:
//
//	fbcluster [-days N] [-seed S] [-code rs|pbrs|lrc] [-csv] [-save trace.json] [-load trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	days := flag.Int("days", 24, "trace length in days (the paper's Fig. 3b covers 24)")
	seed := flag.Int64("seed", 1, "trace seed")
	codeName := flag.String("code", "rs", "erasure code: rs, pbrs, or lrc")
	csv := flag.Bool("csv", false, "emit the day series as CSV instead of a table")
	save := flag.String("save", "", "write the generated trace to this JSON file")
	load := flag.String("load", "", "load the trace from this JSON file instead of generating")
	flag.Parse()

	if err := run(*days, *seed, *codeName, *csv, *save, *load); err != nil {
		fmt.Fprintln(os.Stderr, "fbcluster:", err)
		os.Exit(1)
	}
}

func pickCode(name string) (repro.Codec, error) {
	switch name {
	case "rs":
		return repro.NewRS(10, 4)
	case "pbrs":
		return repro.NewPiggybackedRS(10, 4)
	case "lrc":
		return repro.NewLRC(10, 4, 2)
	default:
		return nil, fmt.Errorf("unknown code %q (want rs, pbrs, or lrc)", name)
	}
}

func run(days int, seed int64, codeName string, csv bool, save, load string) error {
	code, err := pickCode(codeName)
	if err != nil {
		return err
	}

	var tr *repro.Trace
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = workload.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		cfg := repro.DefaultTraceConfig()
		cfg.Days = days
		cfg.Seed = seed
		tr, err = repro.GenerateTrace(cfg)
		if err != nil {
			return err
		}
	}

	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace saved to %s\n", save)
	}

	res, err := repro.RunStudy(code, tr)
	if err != nil {
		return err
	}

	if csv {
		fmt.Println("day,unavailable,triggered,blocks_reconstructed,cross_rack_bytes,recovery_seconds")
		for _, d := range res.Days {
			fmt.Printf("%d,%d,%d,%d,%d,%.1f\n",
				d.Day, d.UnavailableMachines, d.TriggeredEvents,
				d.BlocksReconstructed, d.CrossRackBytes, d.RecoveryTime.Seconds())
		}
		return nil
	}

	fmt.Printf("Warehouse cluster study: %d days, code %s\n\n", len(res.Days), res.CodeName)
	fmt.Printf("%4s  %12s  %8s  %10s  %14s\n", "day", "unavailable", "events", "blocks", "cross-rack")
	for _, d := range res.Days {
		fmt.Printf("%4d  %12d  %8d  %10d  %14s\n",
			d.Day, d.UnavailableMachines, d.TriggeredEvents,
			d.BlocksReconstructed, stats.FormatBytes(d.CrossRackBytes))
	}
	fmt.Println()
	fmt.Printf("Fig. 3a  median machines unavailable/day : %.0f   (paper: >50)\n", res.MedianUnavailable)
	fmt.Printf("Fig. 3b  median blocks reconstructed/day : %.0f   (paper: 95,500)\n", res.MedianBlocksPerDay)
	fmt.Printf("Fig. 3b  median cross-rack traffic/day   : %s   (paper: >180 TB under RS)\n",
		stats.FormatBytes(int64(res.MedianCrossRackBytes)))
	fmt.Printf("         total cross-rack traffic        : %s over %d days\n",
		stats.FormatBytes(res.TotalCrossRackBytes), len(res.Days))
	fmt.Printf("         mean recovery time per block    : %v\n", res.MeanRecoveryTimePerBlock().Round(1000000))

	dist, err := repro.MissingBlockDistribution(repro.DefaultStripeFailureConfig())
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("§2.2     missing blocks per affected stripe (paper: 98.08%% / 1.87%% / 0.05%%):\n")
	fmt.Printf("         1 missing: %.2f%%   2 missing: %.2f%%   >=3 missing: %.2f%%\n",
		100*dist.Fraction(1), 100*dist.Fraction(2), 100*dist.FractionAtLeast(3))

	printUnavailabilityHistogram(res)
	return nil
}

// printUnavailabilityHistogram renders the Fig. 3a distribution as an
// ASCII bar chart: how many days fell into each unavailability band.
func printUnavailabilityHistogram(res *repro.StudyResult) {
	series := make([]float64, len(res.Days))
	hi := 0.0
	for i, d := range res.Days {
		series[i] = float64(d.UnavailableMachines)
		if series[i] > hi {
			hi = series[i]
		}
	}
	const buckets = 8
	h, err := stats.NewHistogram(series, 0, hi+1, buckets)
	if err != nil {
		return
	}
	width := (hi + 1) / buckets
	fmt.Println()
	fmt.Println("Fig. 3a  distribution of machines unavailable per day:")
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for b, c := range h.Buckets {
		bar := ""
		if maxCount > 0 {
			for i := 0; i < c*40/maxCount; i++ {
				bar += "#"
			}
		}
		fmt.Printf("         %4.0f-%4.0f | %-40s %d days\n",
			float64(b)*width, float64(b+1)*width, bar, c)
	}
}
