// Repairmgr-mode benchmark: the autonomous repair control plane
// measured end to end. This mode forwards to the same harness as
// cmd/loadgen -repairmgr (repro.RunRepairMgrBench), so both commands
// produce the identical BENCH_repairmgr.json for a given
// configuration: per codec, time-to-full-health after a datanode kill
// (zero manual fixer calls), the repair bytes a kill-then-restart
// inside the grace window avoids, foreground read p99 under throttled
// versus unthrottled background repair, and the 24-day failure trace
// replayed through the manager's policies.
package main

import (
	"fmt"
	"time"

	"repro"
)

func repairMgrBench(k, r, clients int, duration time.Duration, seed int64, outFile string) error {
	codecs, err := repro.StandardCodecs(k, r)
	if err != nil {
		return err
	}
	cfg := repro.RepairMgrBenchConfig{
		Clients:      clients,
		LoadDuration: duration,
		Seed:         seed,
	}
	fmt.Printf("Repair control plane: (%d,%d) codes, %d clients, %v load per scenario\n\n",
		k, r, clients, duration)
	rep, err := repro.RunRepairMgrBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.FormatTable())
	if err := rep.CheckHealth(); err != nil {
		return err
	}
	fmt.Println("\nall codecs recovered autonomously; restart inside the grace window moved zero repair bytes")
	if outFile != "" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}
