// Engine-mode benchmark: batch repair throughput of the concurrent
// stripe-repair engine, serial versus parallel, for all three codecs on
// one execution substrate — the comparison only means something when RS,
// Piggybacked-RS, and LRC run through identical kernels and scheduling.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro"
)

// EngineBenchResult is the machine-readable BENCH_engine.json payload.
type EngineBenchResult struct {
	Benchmark   string             `json:"benchmark"`
	GeneratedAt string             `json:"generated_at"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	Stripes     int                `json:"stripes"`
	ShardBytes  int                `json:"shard_bytes"`
	Parallelism int                `json:"parallelism"`
	Codecs      []CodecBenchResult `json:"codecs"`
}

// CodecBenchResult is one codec's serial-versus-parallel measurement.
type CodecBenchResult struct {
	Codec            string  `json:"codec"`
	SerialSecs       float64 `json:"serial_secs"`
	ParallelSecs     float64 `json:"parallel_secs"`
	SerialMBPerSec   float64 `json:"serial_mb_per_sec"`
	ParallelMBPerSec float64 `json:"parallel_mb_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// benchStripe is one in-memory encoded stripe with a single failed
// data shard — the paper's dominant repair case (§2.2: 98.08%).
type benchStripe struct {
	shards  [][]byte
	missing int
}

func buildBenchStripes(code repro.Codec, n, shardBytes int, seed int64) ([]benchStripe, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]benchStripe, n)
	for i := range out {
		shards := make([][]byte, code.TotalShards())
		for d := 0; d < code.DataShards(); d++ {
			shards[d] = make([]byte, shardBytes)
			rng.Read(shards[d])
		}
		if err := code.Encode(shards); err != nil {
			return nil, err
		}
		out[i] = benchStripe{shards: shards, missing: i % code.DataShards()}
	}
	return out, nil
}

// repairBatch builds the engine job batch for the stripes; FetchInto
// lands survivor reads in engine-pooled buffers.
func repairBatch(code repro.Codec, stripes []benchStripe, shardBytes int) []repro.RepairJob {
	jobs := make([]repro.RepairJob, len(stripes))
	for i, st := range stripes {
		shards := st.shards
		jobs[i] = repro.RepairJob{
			Code:      code,
			Missing:   []int{st.missing},
			ShardSize: int64(shardBytes),
			Alive:     repro.AllAliveExcept(st.missing),
			FetchInto: func(req repro.ReadRequest, dst []byte) error {
				copy(dst, shards[req.Shard][req.Offset:req.Offset+req.Length])
				return nil
			},
		}
	}
	return jobs
}

// timeBatch runs the batch once and returns the wall time, failing on
// any job error.
func timeBatch(eng *repro.Engine, jobs []repro.RepairJob) (time.Duration, error) {
	start := time.Now()
	for i, res := range eng.RunRepairs(jobs) {
		if res.Err != nil {
			return 0, fmt.Errorf("repair job %d: %w", i, res.Err)
		}
	}
	return time.Since(start), nil
}

func engineBench(k, r, parallelism, stripes, shardBytes int, outFile string) error {
	if stripes < 1 {
		return fmt.Errorf("-stripes must be >= 1, got %d", stripes)
	}
	if shardBytes < 2 || shardBytes%2 != 0 {
		return fmt.Errorf("-shard must be a positive even byte count, got %d", shardBytes)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	result := EngineBenchResult{
		Benchmark:   "engine-repair",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Stripes:     stripes,
		ShardBytes:  shardBytes,
		Parallelism: parallelism,
	}

	rsc, err := repro.NewRS(k, r)
	if err != nil {
		return err
	}
	pb, err := repro.NewPiggybackedRS(k, r)
	if err != nil {
		return err
	}
	codecs := []repro.Codec{rsc, pb}
	if lc, err := repro.NewLRC(k, r, 2); err == nil {
		codecs = append(codecs, lc)
	} else {
		fmt.Fprintf(os.Stderr, "repaircost: skipping lrc(%d,%d,2): %v\n", k, r, err)
	}

	fmt.Printf("Batch repair throughput: %d stripes x %d-byte shards, single data-shard failures\n",
		stripes, shardBytes)
	fmt.Printf("GOMAXPROCS=%d, engine parallelism %d vs 1\n\n", runtime.GOMAXPROCS(0), parallelism)
	fmt.Printf("%-22s %12s %12s %12s %12s %8s\n",
		"codec", "serial", "parallel", "ser MB/s", "par MB/s", "speedup")

	serialEng := repro.NewEngine(repro.EngineOptions{Parallelism: 1})
	parEng := repro.NewEngine(repro.EngineOptions{Parallelism: parallelism})
	for _, code := range codecs {
		bench, err := buildBenchStripes(code, stripes, shardBytes, 99)
		if err != nil {
			return err
		}
		jobs := repairBatch(code, bench, shardBytes)
		// Warm decode-matrix caches with a full untimed pass — the batch
		// spans k distinct survivor sets, so warming one job would leave
		// the serial timing paying the remaining matrix inversions.
		if _, err := timeBatch(serialEng, jobs); err != nil {
			return err
		}
		serial, err := timeBatch(serialEng, jobs)
		if err != nil {
			return err
		}
		parallel, err := timeBatch(parEng, jobs)
		if err != nil {
			return err
		}
		// Throughput counts repaired bytes: one shard per stripe.
		repaired := float64(stripes) * float64(shardBytes) / 1e6
		cr := CodecBenchResult{
			Codec:            code.Name(),
			SerialSecs:       serial.Seconds(),
			ParallelSecs:     parallel.Seconds(),
			SerialMBPerSec:   repaired / serial.Seconds(),
			ParallelMBPerSec: repaired / parallel.Seconds(),
			Speedup:          serial.Seconds() / parallel.Seconds(),
		}
		result.Codecs = append(result.Codecs, cr)
		fmt.Printf("%-22s %12s %12s %12.1f %12.1f %7.2fx\n",
			cr.Codec, serial.Round(time.Millisecond), parallel.Round(time.Millisecond),
			cr.SerialMBPerSec, cr.ParallelMBPerSec, cr.Speedup)
	}

	if outFile != "" {
		blob, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(outFile, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nresults written to %s\n", outFile)
	}
	return nil
}
