// Command repaircost prints single-shard repair download costs for the
// three codecs across a (k, r) sweep — the analytical backbone of the
// paper's §3 comparison. For each code it reports the per-position
// repair fraction (download / RS baseline), the data-shard and all-shard
// averages, and the storage overhead, making the paper's trade-off
// explicit: Piggybacked-RS cuts repair traffic at 1.0x extra storage,
// LRC cuts it further but pays for it in capacity.
//
// Beyond the default analytical table, three measurement modes run the
// codecs on progressively more real substrates:
//
//   - -engine measures concurrent batch-repair throughput on the
//     stripe-repair engine (BENCH_engine.json).
//   - -contention replays a failure trace through the event-driven
//     contended fabric, repairs fair-sharing NIC/TOR/aggregation
//     bandwidth with saturating foreground load (BENCH_contention.json).
//   - -serve brings up a live networked cluster (namenode + datanode
//     daemons on localhost TCP) and drives closed-loop client load with
//     a mid-run datanode kill (BENCH_serve.json).
//
// Usage:
//
//	repaircost [-k K] [-r R] [-size BYTES] [-sweep] [-bounds]
//	repaircost -engine [-parallelism N] [-stripes N] [-shard BYTES] [-out FILE]
//	repaircost -contention [-days N] [-policy fifo|smallest-first|priority-lanes] [-seed N] [-out FILE]
//	repaircost -serve [-clients N] [-duration D] [-seed N] [-out FILE]
//	repaircost -repairmgr [-clients N] [-duration D] [-seed N] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/stats"
)

// mode is one entry of the dispatch table: a selector flag (nil for
// the default analytical mode), the flags that belong to the mode (for
// grouped -h output), a default results file, and the runner.
type mode struct {
	name       string
	selector   *bool
	synopsis   string
	flagNames  []string
	defaultOut string
	run        func(outFile string) error
}

func main() {
	// Shared flags.
	k := flag.Int("k", 10, "data shards")
	r := flag.Int("r", 4, "parity shards")
	seed := flag.Int64("seed", 1, "trace/placement seed (-contention, -serve)")
	out := flag.String("out", "", "results file (default per mode; \"none\" disables)")

	// Default (analytical) mode.
	size := flag.Int64("size", 256<<20, "shard size in bytes")
	sweep := flag.Bool("sweep", false, "print the (k, r) sweep table instead of one configuration")
	bounds := flag.Bool("bounds", false, "compare against the regenerating-codes cut-set bounds (§5)")

	// -engine mode.
	engineMode := flag.Bool("engine", false, "measure batch repair throughput on the stripe-repair engine")
	parallelism := flag.Int("parallelism", 0, "engine worker bound (0 = GOMAXPROCS)")
	stripes := flag.Int("stripes", 32, "stripes per repair batch")
	shard := flag.Int("shard", 512<<10, "shard size in bytes")

	// -contention mode.
	contentionMode := flag.Bool("contention", false, "simulate repairs on the contended fabric (RS vs Piggybacked-RS)")
	days := flag.Int("days", 24, "trace length in days")
	policy := flag.String("policy", "fifo", "repair scheduler policy: fifo, smallest-first, priority-lanes")

	// -serve mode.
	serveMode := flag.Bool("serve", false, "serve closed-loop client load from a live TCP cluster (all codecs)")
	clients := flag.Int("clients", 4, "closed-loop client workers")
	duration := flag.Duration("duration", 3*time.Second, "measured run length per codec")

	// -repairmgr mode.
	repairMgrMode := flag.Bool("repairmgr", false, "benchmark the autonomous repair control plane (all codecs)")

	modes := []mode{
		{
			name:      "repair-cost (default)",
			synopsis:  "analytical repair-download table",
			flagNames: []string{"size", "sweep", "bounds"},
			run: func(string) error {
				return analyticalMode(*k, *r, *size, *sweep, *bounds)
			},
		},
		{
			name:       "engine",
			selector:   engineMode,
			synopsis:   "batch repair throughput on the stripe-repair engine",
			flagNames:  []string{"parallelism", "stripes", "shard"},
			defaultOut: "BENCH_engine.json",
			run: func(outFile string) error {
				return engineBench(*k, *r, *parallelism, *stripes, *shard, outFile)
			},
		},
		{
			name:       "contention",
			selector:   contentionMode,
			synopsis:   "repair latency on the contended fabric under foreground load",
			flagNames:  []string{"days", "policy"},
			defaultOut: "BENCH_contention.json",
			run: func(outFile string) error {
				return contentionBench(*k, *r, *days, *policy, *seed, outFile)
			},
		},
		{
			name:       "serve",
			selector:   serveMode,
			synopsis:   "closed-loop client load against a live TCP cluster",
			flagNames:  []string{"clients", "duration"},
			defaultOut: "BENCH_serve.json",
			run: func(outFile string) error {
				return serveBench(*k, *r, *clients, *duration, *seed, outFile)
			},
		},
		{
			name:       "repairmgr",
			selector:   repairMgrMode,
			synopsis:   "autonomous repair control plane: detection, grace window, throttled recovery",
			flagNames:  []string{"clients", "duration"},
			defaultOut: "BENCH_repairmgr.json",
			run: func(outFile string) error {
				return repairMgrBench(*k, *r, *clients, *duration, *seed, outFile)
			},
		},
	}
	flag.Usage = usageFunc(modes)
	flag.Parse()

	selected := &modes[0]
	picked := 0
	for i := range modes {
		if modes[i].selector != nil && *modes[i].selector {
			selected = &modes[i]
			picked++
		}
	}
	if picked > 1 {
		fmt.Fprintln(os.Stderr, "repaircost: modes are mutually exclusive (pick one of -engine, -contention, -serve, -repairmgr)")
		os.Exit(2)
	}

	outFile := *out
	switch {
	case outFile == "none":
		outFile = ""
	case outFile == "":
		outFile = selected.defaultOut
	}
	if err := selected.run(outFile); err != nil {
		fmt.Fprintln(os.Stderr, "repaircost:", err)
		os.Exit(1)
	}
}

// usageFunc renders -h with flags grouped by mode instead of one flat
// alphabetical list.
func usageFunc(modes []mode) func() {
	return func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "Usage: repaircost [mode] [flags]\n\nModes:\n")
		for _, m := range modes {
			label := m.name
			if m.selector != nil {
				label = "-" + m.name
			}
			fmt.Fprintf(w, "  %-22s %s", label, m.synopsis)
			if m.defaultOut != "" {
				fmt.Fprintf(w, " (writes %s)", m.defaultOut)
			}
			fmt.Fprintln(w)
		}
		printGroup := func(title string, names []string) {
			fmt.Fprintf(w, "\n%s:\n", title)
			for _, name := range names {
				f := flag.Lookup(name)
				if f == nil {
					continue
				}
				fmt.Fprintf(w, "  -%-14s %s", f.Name, f.Usage)
				if f.DefValue != "" && f.DefValue != "false" {
					fmt.Fprintf(w, " (default %s)", f.DefValue)
				}
				fmt.Fprintln(w)
			}
		}
		printGroup("Shared flags", []string{"k", "r", "seed", "out"})
		for _, m := range modes {
			printGroup(m.name+" flags", m.flagNames)
		}
	}
}

func analyticalMode(k, r int, size int64, sweep, bounds bool) error {
	if bounds {
		return boundsTable(k, r)
	}
	if sweep {
		return sweepTable(size)
	}
	return oneConfig(k, r, size)
}

// boundsTable positions each code against the information-theoretic
// repair minimum of the regenerating-codes model the paper cites.
func boundsTable(k, r int) error {
	pb, err := repro.NewPiggybackedRS(k, r)
	if err != nil {
		return err
	}
	p := repro.RegeneratingParams{N: k + r, K: k, D: k + r - 1}
	msrFrac, err := repro.MSRRepairFraction(p)
	if err != nil {
		return err
	}
	mbr, err := repro.MBRPoint(1, p)
	if err != nil {
		return err
	}
	_, pbAvg, err := repro.RepairFraction(pb, 4096)
	if err != nil {
		return err
	}
	fmt.Printf("Single-failure repair download as a fraction of stripe data, (%d,%d), d=%d helpers\n\n", k, r, k+r-1)
	fmt.Printf("%-34s %10s %10s\n", "scheme", "download", "storage")
	fmt.Printf("%-34s %10.3f %9.2fx\n", "reed-solomon (deployed)", 1.0, pb.StorageOverhead())
	fmt.Printf("%-34s %10.3f %9.2fx\n", "piggybacked-rs (data-shard avg)", pb.AverageDataRepairFraction(), pb.StorageOverhead())
	fmt.Printf("%-34s %10.3f %9.2fx\n", "piggybacked-rs (all-shard avg)", pbAvg, pb.StorageOverhead())
	if lc, err := repro.NewLRC(k, r, 2); err == nil {
		_, lcAvg, err := repro.RepairFraction(lc, 4096)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %10.3f %9.2fx\n", "lrc (not storage optimal, §5)", lcAvg, lc.StorageOverhead())
	}
	fmt.Printf("%-34s %10.3f %9.2fx\n", "MSR bound (storage-optimal floor)", msrFrac, pb.StorageOverhead())
	fmt.Printf("%-34s %10.3f %9.2fx\n", "MBR bound (any-storage floor)", mbr.Gamma, mbr.Alpha*float64(k))
	captured := (1 - pb.AverageDataRepairFraction()) / (1 - msrFrac)
	fmt.Printf("\npiggybacking captures %.0f%% of the saving any storage-optimal code could\n", 100*captured)
	fmt.Println("achieve, with none of the (k, r) restrictions of explicit regenerating codes (§5).")
	return nil
}

func oneConfig(k, r int, size int64) error {
	rsc, err := repro.NewRS(k, r)
	if err != nil {
		return err
	}
	pb, err := repro.NewPiggybackedRS(k, r)
	if err != nil {
		return err
	}
	codes := []repro.Codec{rsc, pb}
	if lc, err := repro.NewLRC(k, r, 2); err == nil {
		codes = append(codes, lc)
	}

	fmt.Printf("Single-shard repair cost, (%d,%d), shard size %s\n\n", k, r, stats.FormatBytes(size))
	for _, c := range codes {
		per, avg, err := repro.RepairFraction(c, size)
		if err != nil {
			return err
		}
		fmt.Printf("%s  (overhead %.2fx)\n", c.Name(), c.StorageOverhead())
		fmt.Printf("  position: ")
		for i := range per {
			fmt.Printf("%5.2f", per[i])
		}
		fmt.Println()
		var dataAvg float64
		for i := 0; i < c.DataShards(); i++ {
			dataAvg += per[i]
		}
		dataAvg /= float64(c.DataShards())
		fmt.Printf("  download per repair: avg %s (%.1f%% of RS); data-shard avg %.1f%% savings\n\n",
			stats.FormatBytes(int64(avg*float64(c.DataShards())*float64(size))),
			100*avg, 100*(1-dataAvg))
	}

	fmt.Println("Piggyback groups:", pb.Groups())
	return nil
}

func sweepTable(size int64) error {
	fmt.Printf("Average single-shard repair fraction (of the RS baseline), shard size %s\n\n", stats.FormatBytes(size))
	fmt.Printf("%8s %8s | %8s %8s %14s %14s\n", "k", "r", "rs", "pbrs", "pbrs(data)", "pbrs savings")
	for _, k := range []int{4, 6, 8, 10, 12, 14} {
		for _, r := range []int{2, 3, 4, 5} {
			pb, err := repro.NewPiggybackedRS(k, r)
			if err != nil {
				continue
			}
			_, avg, err := repro.RepairFraction(pb, size)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %8d | %8.3f %8.3f %14.3f %13.1f%%\n",
				k, r, 1.0, avg, pb.AverageDataRepairFraction(), 100*(1-avg))
		}
	}
	fmt.Println("\nrs column: every RS repair downloads the full stripe data (fraction 1.0).")
	fmt.Println("pbrs(data): average over data shards only — the paper's ~30% for (10,4).")
	return nil
}
