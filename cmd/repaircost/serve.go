// Serve-mode benchmark: the paper's comparison measured at the only
// layer an operator's users can see — a live networked cluster serving
// closed-loop client load over TCP while a datanode dies mid-run. The
// quantities that come out (client p50/p99 read latency, throughput,
// degraded-read share, zero visible errors) are the serving-side
// restatement of "fewer repair bytes": the codec that downloads less
// to reconstruct answers degraded reads faster under the same kill.
package main

import (
	"fmt"
	"time"

	"repro"
)

func serveBench(k, r, clients int, duration time.Duration, seed int64, outFile string) error {
	codecs, err := repro.StandardCodecs(k, r)
	if err != nil {
		return err
	}
	cfg := repro.LoadConfig{
		Clients:  clients,
		Duration: duration,
		Seed:     seed,
	}
	fmt.Printf("Serving-layer load: (%d,%d) codes, %d clients, %v per codec\n", k, r, clients, duration)
	rep, err := repro.RunServeBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Printf("cluster: %d racks x %d machines over localhost TCP, datanode killed at %.1fs\n\n",
		rep.Racks, rep.MachinesPerRack, rep.KillAfterSecs)
	fmt.Print(rep.FormatTable())
	if err := rep.CheckErrors(); err != nil {
		return err
	}
	fmt.Println("\nzero client-visible errors: the mid-run kill was absorbed by degraded reads")

	if outFile != "" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}
