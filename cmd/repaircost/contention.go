// Contention-mode benchmark: RS versus Piggybacked-RS repair latency on
// the event-driven contended fabric — the operational half of the
// paper's claim. Fewer repair bytes is the mechanism; what an operator
// feels is the tail: p99 time-in-degraded-state and how much a client's
// degraded read slows down while the core is saturated with foreground
// shuffle traffic.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro"
)

// ContentionBenchResult is the machine-readable BENCH_contention.json
// payload. Everything in it is deterministic for a fixed seed.
type ContentionBenchResult struct {
	Benchmark string `json:"benchmark"`
	Seed      int64  `json:"seed"`
	TraceDays int    `json:"trace_days"`

	Policy               string  `json:"policy"`
	DaysSimulated        int     `json:"days_simulated"`
	RepairsPerDay        int     `json:"repairs_per_day"`
	DegradedReadsPerDay  int     `json:"degraded_reads_per_day"`
	MaxConcurrentRepairs int     `json:"max_concurrent_repairs"`
	ForegroundWorkers    int     `json:"foreground_workers"`
	ForegroundMeanMB     float64 `json:"foreground_mean_mb"`
	WindowSeconds        float64 `json:"window_seconds"`

	Racks           int     `json:"racks"`
	MachinesPerRack int     `json:"machines_per_rack"`
	NICGbps         float64 `json:"nic_gbps"`
	TORUpGbps       float64 `json:"tor_up_gbps"`
	AggGbps         float64 `json:"agg_gbps"`

	Codecs []CodecContentionResult `json:"codecs"`

	// P99ImprovementFraction is the candidate's (second codec's)
	// relative p99 repair-latency reduction over the baseline.
	P99ImprovementFraction float64 `json:"p99_improvement_fraction"`
	// PartialSumP99ImprovementFraction is the relative p99 reduction of
	// RS-with-partial-sum-repair over conventional RS — the tentpole's
	// bottleneck-relief claim quantified on the identical trace.
	PartialSumP99ImprovementFraction float64 `json:"partial_sum_p99_improvement_fraction"`
}

// CodecContentionResult is one codec's contention measurements.
type CodecContentionResult struct {
	Codec               string  `json:"codec"`
	PartialSum          bool    `json:"partial_sum"`
	Repairs             int     `json:"repairs"`
	RepairP50Secs       float64 `json:"repair_p50_secs"`
	RepairP99Secs       float64 `json:"repair_p99_secs"`
	RepairMeanSecs      float64 `json:"repair_mean_secs"`
	RepairWaitMeanSecs  float64 `json:"repair_wait_mean_secs"`
	DegradedReads       int     `json:"degraded_reads"`
	DegradedP50Secs     float64 `json:"degraded_p50_secs"`
	DegradedP99Secs     float64 `json:"degraded_p99_secs"`
	UnloadedP50Secs     float64 `json:"unloaded_degraded_p50_secs"`
	DegradedSlowdownP50 float64 `json:"degraded_slowdown_p50"`
}

func toCodecResult(r *repro.ContentionResult) CodecContentionResult {
	name := r.CodeName
	if r.PartialSums {
		name += " +partial-sum"
	}
	return CodecContentionResult{
		Codec:               name,
		PartialSum:          r.PartialSums,
		Repairs:             r.Repairs,
		RepairP50Secs:       r.RepairP50,
		RepairP99Secs:       r.RepairP99,
		RepairMeanSecs:      r.RepairMean,
		RepairWaitMeanSecs:  r.RepairWaitMean,
		DegradedReads:       r.DegradedReads,
		DegradedP50Secs:     r.DegradedP50,
		DegradedP99Secs:     r.DegradedP99,
		UnloadedP50Secs:     r.UnloadedDegradedSeconds,
		DegradedSlowdownP50: r.DegradedSlowdownP50,
	}
}

func parsePolicy(s string) (repro.SchedulerPolicy, error) {
	switch s {
	case "fifo":
		return repro.PolicyFIFO, nil
	case "smallest-first":
		return repro.PolicySmallestFirst, nil
	case "priority-lanes":
		return repro.PolicyPriorityLanes, nil
	default:
		return 0, fmt.Errorf("unknown -policy %q (want fifo, smallest-first, or priority-lanes)", s)
	}
}

func contentionBench(k, r, days int, policyName string, seed int64, outFile string) error {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	if days < 1 {
		return fmt.Errorf("-days must be >= 1, got %d", days)
	}
	rsc, err := repro.NewRS(k, r)
	if err != nil {
		return err
	}
	pb, err := repro.NewPiggybackedRS(k, r)
	if err != nil {
		return err
	}
	traceCfg := repro.DefaultTraceConfig()
	traceCfg.Days = days
	traceCfg.Seed = seed
	tr, err := repro.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	cfg := repro.DefaultContentionConfig()
	cfg.Policy = policy
	cfg.Seed = seed
	if width := rsc.TotalShards(); cfg.Topology.Racks <= width {
		cfg.Topology.Racks = width + 2
	}

	fmt.Printf("Contention study: (%d,%d) codes, %d-day trace, policy %s\n", k, r, days, policy)
	fmt.Printf("fabric: %d racks x %d machines, NIC %.1f Gb/s, TOR %.1f Gb/s, agg %.1f Gb/s\n",
		cfg.Topology.Racks, cfg.Topology.MachinesPerRack,
		cfg.Topology.NICBytesPerSec*8/1e9, cfg.Topology.TORUpBytesPerSec*8/1e9, cfg.Topology.AggBytesPerSec*8/1e9)
	fmt.Printf("load: %d foreground workers (%.0f MB mean flows), %d repairs + %d degraded reads per day, %d repair slots\n\n",
		cfg.ForegroundWorkers, cfg.ForegroundMeanBytes/1e6,
		cfg.RepairsPerDay, cfg.DegradedReadsPerDay, cfg.MaxConcurrentRepairs)

	cmp, err := repro.CompareContentionCodecs(rsc, pb, tr, cfg)
	if err != nil {
		return err
	}
	// The same trace and placement stream, with repairs running as
	// partial-sum aggregation trees instead of k-wide fan-ins.
	partialCfg := cfg
	partialCfg.PartialSums = true
	partialCmp, err := repro.CompareContentionCodecs(rsc, pb, tr, partialCfg)
	if err != nil {
		return err
	}

	result := ContentionBenchResult{
		Benchmark:            "contention-repair",
		Seed:                 seed,
		TraceDays:            days,
		Policy:               policy.String(),
		DaysSimulated:        cmp.Baseline.DaysSimulated,
		RepairsPerDay:        cfg.RepairsPerDay,
		DegradedReadsPerDay:  cfg.DegradedReadsPerDay,
		MaxConcurrentRepairs: cfg.MaxConcurrentRepairs,
		ForegroundWorkers:    cfg.ForegroundWorkers,
		ForegroundMeanMB:     cfg.ForegroundMeanBytes / 1e6,
		WindowSeconds:        cfg.WindowSeconds,
		Racks:                cfg.Topology.Racks,
		MachinesPerRack:      cfg.Topology.MachinesPerRack,
		NICGbps:              cfg.Topology.NICBytesPerSec * 8 / 1e9,
		TORUpGbps:            cfg.Topology.TORUpBytesPerSec * 8 / 1e9,
		AggGbps:              cfg.Topology.AggBytesPerSec * 8 / 1e9,
		Codecs: []CodecContentionResult{
			toCodecResult(cmp.Baseline),
			toCodecResult(cmp.Candidate),
			toCodecResult(partialCmp.Baseline),
			toCodecResult(partialCmp.Candidate),
		},
		P99ImprovementFraction: cmp.RepairP99Improvement(),
	}
	if base := cmp.Baseline.RepairP99; base > 0 {
		result.PartialSumP99ImprovementFraction = 1 - partialCmp.Baseline.RepairP99/base
	}

	fmt.Printf("%-34s %10s %10s %10s %10s %12s %10s\n",
		"codec", "p50", "p99", "mean", "wait", "degraded p50", "slowdown")
	for _, c := range result.Codecs {
		fmt.Printf("%-34s %9.1fs %9.1fs %9.1fs %9.1fs %11.1fs %9.2fx\n",
			c.Codec, c.RepairP50Secs, c.RepairP99Secs, c.RepairMeanSecs,
			c.RepairWaitMeanSecs, c.DegradedP50Secs, c.DegradedSlowdownP50)
	}
	fmt.Printf("\npiggybacked-rs cuts p99 repair latency by %.1f%% at this load\n",
		100*result.P99ImprovementFraction)
	fmt.Printf("partial-sum repair cuts RS p99 repair latency by %.1f%% at this load\n",
		100*result.PartialSumP99ImprovementFraction)

	if outFile != "" {
		blob, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(outFile, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}
