// Command loadgen drives a live, networked serving cluster on
// localhost — namenode + datanode daemons over real TCP — with a
// closed-loop workload: N clients issue reads (byte-verified against
// the written content) and writes in a configurable mix while a
// datanode holding working-set data is killed mid-run. Each requested
// codec serves the identical workload, so the output is the paper's
// repair-traffic claim restated in operator units: client-visible
// throughput, p50/p99 latency, and the share of block reads that had
// to take the degraded path.
//
// Results land in BENCH_serve.json (see README.md for how to read it).
//
// With -shardbench the command instead benchmarks the sharded metadata
// plane: a many-files Zipf metadata workload hammered in-process at
// each -shards count, writing metadata ops/sec and lock-wait per op to
// BENCH_shards.json and failing unless throughput rises monotonically
// with shard count.
//
// With -persistbench it benchmarks the datanode persistence layer: the
// extent store's append throughput under each fsync policy and its
// recovery-scan time at increasing store sizes, writing
// BENCH_persist.json and failing unless every reopen rebuilds the full
// index with zero CRC failures.
//
// With -cachebench it benchmarks the caching tier and the hedged-read
// engine: a Zipf-skewed pure-read workload over a cluster whose hottest
// machine is throttled (slow, not dead), run twice per codec — hedging
// off then on — with both cache tiers hot, writing BENCH_cache.json and
// failing unless the client cache hit ratio clears its floor and
// hedging cuts the slow-node read p99.
//
// Usage:
//
//	loadgen [-codecs rs,pbrs,lrc] [-k K] [-r R] [-clients N] [-duration D]
//	        [-files N] [-filesize BYTES] [-blocksize BYTES] [-racks N]
//	        [-machines N] [-writefrac F] [-kill D] [-seed N] [-out FILE]
//	loadgen -shardbench [-shards 1,4,16] [-duration D] [-seed N] [-out FILE]
//	loadgen -persistbench [-blocksize BYTES] [-persist-appends N]
//	        [-persist-scan 256,1024,4096] [-seed N] [-out FILE]
//	loadgen -cachebench [-codecs rs,pbrs,lrc] [-zipf S] [-node-throttle D]
//	        [-hedge D] [-cache BYTES] [-node-cache BYTES] [-out FILE]
//	loadgen -metricssmoke [-codecs rs,pbrs,lrc] [-k K] [-r R]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	k := flag.Int("k", 10, "data shards")
	r := flag.Int("r", 4, "parity shards")
	codecNames := flag.String("codecs", "rs,pbrs,lrc", "comma-separated codecs to serve under: rs, pbrs, lrc")
	clients := flag.Int("clients", 8, "closed-loop client workers")
	duration := flag.Duration("duration", 6*time.Second, "measured run length per codec")
	files := flag.Int("files", 8, "preloaded (erasure-coded) working-set files")
	filesize := flag.Int64("filesize", 256<<10, "bytes per working-set file")
	blocksize := flag.Int64("blocksize", 64<<10, "block payload bound in bytes")
	racks := flag.Int("racks", 0, "racks (0 = widest stripe + 2)")
	machines := flag.Int("machines", 2, "machines per rack")
	writefrac := flag.Float64("writefrac", 0.1, "fraction of operations that write a fresh file (negative = pure reads)")
	kill := flag.Duration("kill", 0, "kill a working-set datanode this far into each run (0 = duration/3, negative = never)")
	partialsum := flag.Bool("partialsum", false, "serve degraded reads through the partial-sum pipeline (one folded block from the helper tree)")
	partialbench := flag.Bool("partialbench", false, "run each codec conventionally AND with partial-sum repair, comparing bytes at the reconstructing client (writes BENCH_partialsum.json)")
	repairbench := flag.Bool("repairmgr", false, "benchmark the autonomous repair control plane: time-to-full-health after a kill, grace-window savings, foreground p99 under throttled vs unthrottled background repair, trace replay (writes BENCH_repairmgr.json)")
	throttle := flag.Float64("throttle", 0, "repairmgr: background repair cap in bytes/sec (0 = harness default)")
	shardbench := flag.Bool("shardbench", false, "benchmark the sharded metadata plane: Zipf metadata workload at each -shards count, gated on monotonic ops/sec scaling (writes BENCH_shards.json)")
	shardCounts := flag.String("shards", "1,4,16", "shardbench: comma-separated metadata shard counts to measure, in order")
	persistbench := flag.Bool("persistbench", false, "benchmark the persistent extent store: append throughput per fsync policy (never/interval/always) and recovery-scan time per store size, gated on full index rebuild and zero CRC failures (writes BENCH_persist.json)")
	persistAppends := flag.Int("persist-appends", 512, "persistbench: blocks appended per fsync policy")
	persistScan := flag.String("persist-scan", "256,1024,4096", "persistbench: comma-separated store sizes (blocks) whose recovery scan is timed")
	cachebench := flag.Bool("cachebench", false, "benchmark the caching tier and hedged reads: Zipf read workload with the hottest machine throttled, each codec run with hedging off and on, gated on cache hit ratio and the hedged p99 cut (writes BENCH_cache.json)")
	zipfS := flag.Float64("zipf", 0, "cachebench: Zipf popularity exponent over the working set (0 = default 1.01)")
	nodeThrottle := flag.Duration("node-throttle", 0, "cachebench: per-data-RPC delay injected on the hottest file's machine (0 = default 150ms)")
	hedge := flag.Duration("hedge", 0, "cachebench: hedged-read delay before reconstruction races the slow primary (0 = default 20ms)")
	clientCache := flag.Int64("cache", 0, "cachebench: client block-cache bytes per worker (0 = default 8MiB)")
	nodeCache := flag.Int64("node-cache", 0, "cachebench: datanode read-cache bytes per node (0 = default 8MiB)")
	metricsDump := flag.Bool("metrics-dump", false, "run the cluster with telemetry enabled and append the end-of-run /metrics registry snapshot to each codec's results row")
	metricsSmoke := flag.Bool("metricssmoke", false, "run the end-to-end telemetry smoke check per codec: instrumented cluster, kill + degraded reads + autonomous repair, double /metrics scrape gated on instrument presence and counter monotonicity (writes no results file)")
	seed := flag.Int64("seed", 1, "placement/content/mix seed")
	out := flag.String("out", "", `results file (default BENCH_serve.json; BENCH_partialsum.json with -partialbench; BENCH_repairmgr.json with -repairmgr; BENCH_shards.json with -shardbench; BENCH_cache.json with -cachebench; "none" disables)`)
	flag.Parse()

	if *repairbench && (*partialbench || *partialsum) {
		fmt.Fprintln(os.Stderr, "loadgen: -repairmgr is mutually exclusive with -partialbench/-partialsum")
		os.Exit(2)
	}
	if *shardbench && (*repairbench || *partialbench || *partialsum) {
		fmt.Fprintln(os.Stderr, "loadgen: -shardbench is mutually exclusive with -repairmgr/-partialbench/-partialsum")
		os.Exit(2)
	}
	if *metricsSmoke && (*shardbench || *repairbench || *partialbench || *partialsum) {
		fmt.Fprintln(os.Stderr, "loadgen: -metricssmoke is mutually exclusive with the benchmark modes")
		os.Exit(2)
	}
	if *persistbench && (*metricsSmoke || *shardbench || *repairbench || *partialbench || *partialsum) {
		fmt.Fprintln(os.Stderr, "loadgen: -persistbench is mutually exclusive with the other modes")
		os.Exit(2)
	}
	if *cachebench && (*persistbench || *metricsSmoke || *shardbench || *repairbench || *partialbench || *partialsum) {
		fmt.Fprintln(os.Stderr, "loadgen: -cachebench is mutually exclusive with the other modes")
		os.Exit(2)
	}
	outFile := *out
	if outFile == "" {
		switch {
		case *partialbench:
			outFile = "BENCH_partialsum.json"
		case *repairbench:
			outFile = "BENCH_repairmgr.json"
		case *shardbench:
			outFile = "BENCH_shards.json"
		case *persistbench:
			outFile = "BENCH_persist.json"
		case *cachebench:
			outFile = "BENCH_cache.json"
		default:
			outFile = "BENCH_serve.json"
		}
	}
	var err error
	switch {
	case *cachebench:
		// The cachebench sizes its own working set (it must overflow
		// the client cache to mean anything), so the generic -files
		// default only applies when the user set it explicitly.
		cbFiles := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "files" {
				cbFiles = *files
			}
		})
		err = runCacheBench(*k, *r, *codecNames, *clients, *duration, cbFiles, *filesize,
			*blocksize, *racks, *machines, *zipfS, *nodeThrottle, *hedge, *clientCache,
			*nodeCache, *seed, outFile)
	case *persistbench:
		err = runPersistBench(*blocksize, *persistAppends, *persistScan, *seed, outFile)
	case *metricsSmoke:
		err = runMetricsSmoke(*k, *r, *codecNames)
	case *shardbench:
		err = runShardBench(*shardCounts, *duration, *seed, outFile)
	case *repairbench:
		err = runRepairMgrBench(*k, *r, *codecNames, *clients, *duration, *files, *filesize,
			*blocksize, *racks, *machines, *throttle, *seed, outFile)
	default:
		err = run(*k, *r, *codecNames, *clients, *duration, *files, *filesize, *blocksize,
			*racks, *machines, *writefrac, *kill, *partialsum, *partialbench, *metricsDump,
			*seed, outFile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// runRepairMgrBench is the shared control-plane harness entry (also
// reachable as repaircost -repairmgr): per codec, a live managed
// cluster is killed and timed back to health, the grace window is
// measured against an eager manager, closed-loop readers run over
// throttled and unthrottled background repair, and the failure trace
// replays through the manager's policies.
func runRepairMgrBench(k, r int, codecNames string, clients int, duration time.Duration,
	files int, filesize, blocksize int64, racks, machines int, throttle float64,
	seed int64, outFile string) error {
	codecs, err := buildCodecs(codecNames, k, r)
	if err != nil {
		return err
	}
	cfg := repro.RepairMgrBenchConfig{
		Racks:               racks,
		MachinesPerRack:     machines,
		BlockSize:           blocksize,
		Files:               files,
		FileBytes:           filesize,
		Clients:             clients,
		LoadDuration:        duration,
		ThrottleBytesPerSec: throttle,
		Seed:                seed,
	}
	fmt.Printf("Repair control plane: %d clients, %v load per scenario, %d x %s working set\n\n",
		clients, duration, files, byteCount(filesize))
	rep, err := repro.RunRepairMgrBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.FormatTable())
	if err := rep.CheckHealth(); err != nil {
		return err
	}
	fmt.Println("\nall codecs recovered autonomously; restart inside the grace window moved zero repair bytes")
	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// runShardBench measures the sharded metadata plane: the identical
// Zipf metadata workload (many tiny files, skewed reads, a write
// share) hammered in-process at each shard count, then gated on the
// acceptance criterion — metadata ops/sec must not fall as shards
// rise, and no operation may error.
func runShardBench(shardCounts string, duration time.Duration, seed int64, outFile string) error {
	counts, err := parseShardCounts(shardCounts)
	if err != nil {
		return err
	}
	cfg := repro.ShardBenchConfig{
		ShardCounts: counts,
		Duration:    duration,
		Seed:        seed,
	}
	fmt.Printf("Sharded-metadata benchmark: Zipf workload at %v shards, %v per count\n\n",
		counts, duration)
	rep, err := repro.RunShardBench(cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.FormatTable())

	if err := rep.CheckScaling(); err != nil {
		return err
	}
	fmt.Println("\nmetadata throughput scaled monotonically with shard count, zero op errors")

	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// parseShardCounts parses the -shards list ("1,4,16").
func parseShardCounts(s string) ([]int, error) { return parseIntList(s, "shard count") }

// parseIntList parses a comma-separated positive-integer list flag.
func parseIntList(s, what string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("invalid %s %q (want a positive integer list like 1,4,16)", what, part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no %ss given", what)
	}
	return counts, nil
}

// runPersistBench measures the datanode persistence layer: append
// throughput under each fsync policy and the recovery scan (index
// rebuild on reopen) at each store size, then applies the gate — every
// reopen must rebuild the full index and every recovered payload must
// pass its record CRC.
func runPersistBench(blocksize int64, appends int, scanSizes string, seed int64, outFile string) error {
	sizes, err := parseIntList(scanSizes, "store size")
	if err != nil {
		return err
	}
	cfg := repro.PersistBenchConfig{
		BlockBytes:   blocksize,
		AppendBlocks: appends,
		ScanBlocks:   sizes,
		Seed:         seed,
	}
	fmt.Printf("Persistent extent store: %d x %s appends per fsync policy, recovery scans at %v blocks\n\n",
		appends, byteCount(blocksize), sizes)
	rep, err := repro.RunPersistBench(cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.FormatTable())

	if err := rep.CheckRecovery(); err != nil {
		return err
	}
	fmt.Println("\nevery reopen rebuilt the full index from disk; zero recovered payloads failed CRC")

	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// runCacheBench measures the caching tier and the hedged-read engine:
// per codec, the identical Zipf + throttled-hot-machine pure-read
// workload runs with hedging off then on, both times with the client
// and datanode caches enabled, then the gates apply — zero
// client-visible errors, the client cache hit ratio above its floor,
// and hedging actually cutting the slow node's read p99.
func runCacheBench(k, r int, codecNames string, clients int, duration time.Duration,
	files int, filesize, blocksize int64, racks, machines int, zipfS float64,
	nodeThrottle, hedge time.Duration, clientCache, nodeCache int64,
	seed int64, outFile string) error {
	codecs, err := buildCodecs(codecNames, k, r)
	if err != nil {
		return err
	}
	cfg := repro.LoadConfig{
		Racks:            racks,
		MachinesPerRack:  machines,
		BlockSize:        blocksize,
		Files:            files,
		FileBytes:        filesize,
		Clients:          clients,
		Duration:         duration,
		ZipfS:            zipfS,
		ThrottleDelay:    nodeThrottle,
		HedgeDelay:       hedge,
		ClientCacheBytes: clientCache,
		NodeCacheBytes:   nodeCache,
		Seed:             seed,
	}
	fmt.Printf("Cache/hedge benchmark: %d clients, %v per run, 2 runs per codec (hedging off/on)\n\n",
		clients, duration)
	rep, err := repro.RunServeCacheBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Printf("Zipf s=%.2f, hot machine throttled %.0fms/RPC, hedge delay %.0fms, caches %s client / %s node\n\n",
		rep.ZipfS, rep.ThrottleMillis, rep.HedgeDelayMillis,
		byteCount(rep.ClientCacheBytes), byteCount(rep.NodeCacheBytes))
	fmt.Print(rep.FormatTable())

	if err := rep.CheckErrors(); err != nil {
		return err
	}
	if err := rep.CheckEffective(0.5); err != nil {
		return err
	}
	fmt.Println("\nzero client-visible errors; cache hit ratio cleared 50% and hedging cut the slow-node read p99 for every codec")

	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// buildCodecs filters repro.StandardCodecs — the one place the
// benchmark lineup is defined — by the -codecs selection. LRC is
// absent from the standard lineup when (k, r) does not admit the
// two-group HDFS-Xorbas shape; asking for it then warns and skips.
func buildCodecs(names string, k, r int) ([]repro.Codec, error) {
	lineup, err := repro.StandardCodecs(k, r)
	if err != nil {
		return nil, err
	}
	prefixes := map[string]string{"rs": "rs(", "pbrs": "piggybacked-rs(", "lrc": "lrc("}
	var out []repro.Codec
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prefix, ok := prefixes[name]
		if !ok {
			return nil, fmt.Errorf("unknown codec %q (want rs, pbrs, lrc)", name)
		}
		found := false
		for _, c := range lineup {
			if strings.HasPrefix(c.Name(), prefix) {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "loadgen: skipping %s: not available for (%d,%d)\n", name, k, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no codecs selected")
	}
	return out, nil
}

// runMetricsSmoke drives the end-to-end telemetry check (`make
// metrics-smoke`): per codec, an instrumented cluster with the debug
// HTTP listeners on is pushed through a kill / degraded-read /
// autonomous-repair cycle and its /metrics endpoint is scraped twice,
// gated on instrument presence, cycle activity, and counter
// monotonicity.
func runMetricsSmoke(k, r int, codecNames string) error {
	codecs, err := buildCodecs(codecNames, k, r)
	if err != nil {
		return err
	}
	for _, c := range codecs {
		fmt.Printf("metrics smoke: %s ... ", c.Name())
		if err := repro.RunServeMetricsSmoke(c); err != nil {
			fmt.Println("FAIL")
			return err
		}
		fmt.Println("ok")
	}
	fmt.Printf("\nall %d codecs exposed a complete, monotonic /metrics surface through the repair cycle\n", len(codecs))
	return nil
}

func run(k, r int, codecNames string, clients int, duration time.Duration, files int,
	filesize, blocksize int64, racks, machines int, writefrac float64,
	kill time.Duration, partialsum, partialbench, metricsDump bool, seed int64, outFile string) error {
	codecs, err := buildCodecs(codecNames, k, r)
	if err != nil {
		return err
	}
	cfg := repro.LoadConfig{
		Racks:            racks,
		MachinesPerRack:  machines,
		BlockSize:        blocksize,
		Files:            files,
		FileBytes:        filesize,
		Clients:          clients,
		Duration:         duration,
		WriteFraction:    writefrac,
		KillAfter:        kill,
		PartialSumRepair: partialsum,
		MetricsDump:      metricsDump,
		Seed:             seed,
	}

	if partialbench {
		return runPartialBench(codecs, cfg, outFile)
	}

	fmt.Printf("Serving-layer load: %d clients, %v per codec, %d x %s working set, %s blocks\n",
		clients, duration, files, byteCount(filesize), byteCount(blocksize))
	rep, err := repro.RunServeBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Printf("cluster: %d racks x %d machines (namenode + %d datanode daemons over TCP), kill at %.1fs\n\n",
		rep.Racks, rep.MachinesPerRack, rep.Racks*rep.MachinesPerRack, rep.KillAfterSecs)
	fmt.Print(rep.FormatTable())

	if err := rep.CheckErrors(); err != nil {
		return err
	}
	fmt.Println("\nzero client-visible errors: the mid-run kill was absorbed by degraded reads")

	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// runPartialBench serves the identical kill-mid-run workload twice per
// codec — conventional fan-in degraded reads, then the partial-sum
// pipeline — and reports what the reconstructing client's NIC received
// per degraded block (~k blocks versus ~1 folded block).
func runPartialBench(codecs []repro.Codec, cfg repro.LoadConfig, outFile string) error {
	fmt.Printf("Partial-sum comparison: %d clients, %v per run, 2 runs per codec\n\n",
		cfg.Clients, cfg.Duration)
	rep, err := repro.RunServePartialSumBench(codecs, cfg)
	if err != nil {
		return err
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.FormatTable())

	if err := rep.CheckErrors(); err != nil {
		return err
	}
	fmt.Println("\nzero client-visible errors in both modes")

	if outFile != "" && outFile != "none" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", outFile)
	}
	return nil
}

// byteCount renders a byte count compactly (KiB/MiB granularity).
func byteCount(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
