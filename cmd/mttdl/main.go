// Command mttdl sweeps the §3.2 reliability model: mean time to data
// loss for 3-way replication, (10,4) RS, (10,4) Piggybacked-RS, and
// (10,4,2) LRC, across node failure rates and recovery bandwidths. The
// sweep shows where each scheme's reliability comes from — and that the
// piggybacked code's faster repairs translate into a constant MTTDL
// multiplier over RS at every operating point.
//
// Usage:
//
//	mttdl [-block BYTES] [-sweep failure|bandwidth]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/stats"
)

func main() {
	block := flag.Int64("block", 256<<20, "block size in bytes")
	sweep := flag.String("sweep", "failure", "sweep dimension: failure or bandwidth")
	flag.Parse()

	if err := run(*block, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
}

func systems(block int64) ([]repro.ReliabilitySystem, error) {
	rep3, err := repro.ReplicationSystem(3, float64(block))
	if err != nil {
		return nil, err
	}
	out := []repro.ReliabilitySystem{rep3}
	rsc, err := repro.NewRS(10, 4)
	if err != nil {
		return nil, err
	}
	pb, err := repro.NewPiggybackedRS(10, 4)
	if err != nil {
		return nil, err
	}
	lc, err := repro.NewLRC(10, 4, 2)
	if err != nil {
		return nil, err
	}
	for _, c := range []repro.Codec{rsc, pb, lc} {
		sys, err := repro.CodeSystem(c, float64(block))
		if err != nil {
			return nil, err
		}
		out = append(out, sys)
	}
	return out, nil
}

func run(block int64, sweep string) error {
	systems, err := systems(block)
	if err != nil {
		return err
	}
	base := repro.DefaultReliabilityParams()

	fmt.Printf("MTTDL (years/stripe), block %s — §3.2 reliability model\n\n",
		stats.FormatBytes(block))
	header := fmt.Sprintf("%-26s", "parameter")
	for _, sys := range systems {
		header += fmt.Sprintf(" %20s", sys.Name)
	}
	fmt.Println(header)

	switch sweep {
	case "failure":
		// Mean time between recovery-triggering failures per node, from
		// one month to two years.
		for _, months := range []float64{1, 3, 6, 12, 24} {
			p := base
			p.NodeFailuresPerHour = 1 / (months * 30 * 24)
			row := fmt.Sprintf("%-26s", fmt.Sprintf("MTBF %.0f months", months))
			for _, sys := range systems {
				years, err := repro.MTTDLYears(sys, p)
				if err != nil {
					return err
				}
				row += fmt.Sprintf(" %20.3g", years)
			}
			fmt.Println(row)
		}
	case "bandwidth":
		for _, mbps := range []float64{5, 10, 25, 50, 100, 200} {
			p := base
			p.RepairBytesPerHour = mbps * 1e6 * 3600
			row := fmt.Sprintf("%-26s", fmt.Sprintf("repair %.0f MB/s", mbps))
			for _, sys := range systems {
				years, err := repro.MTTDLYears(sys, p)
				if err != nil {
					return err
				}
				row += fmt.Sprintf(" %20.3g", years)
			}
			fmt.Println(row)
		}
	default:
		return fmt.Errorf("unknown sweep %q (want failure or bandwidth)", sweep)
	}

	fmt.Println("\nReading the table: Piggybacked-RS holds a constant multiplier over RS at")
	fmt.Println("every point (its repairs always move ~24% fewer bytes); both erasure codes")
	fmt.Println("dominate 3-way replication per stripe while storing half as much.")
	return nil
}
