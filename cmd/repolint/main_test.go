package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const fixtureRoot = "../../internal/analysis/testdata/fixture"

// Every analyzer must fire at least once on the deliberately broken
// fixture tree — an analyzer that silently stops matching after a
// refactor fails here (and in CI, which runs the -expect-all gate).
func TestFixtureFiresEveryAnalyzer(t *testing.T) {
	diags, err := Run(fixtureRoot, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]int{}
	for _, d := range diags {
		fired[d.Analyzer]++
	}
	for _, a := range analysis.All() {
		if fired[a.Name()] == 0 {
			t.Errorf("analyzer %s matched nothing in the fixture tree", a.Name())
		}
	}
}

// The real module must be clean: every violation fixed or carrying a
// justified //repolint:ignore. This is the same gate `make lint` runs.
func TestRepoIsClean(t *testing.T) {
	diags, err := Run("../..", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestExpectAllExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", fixtureRoot, "-expect-all"}, &out, &errb); code != 0 {
		t.Errorf("-expect-all on fixture tree: exit %d, stderr %q", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	// The clean repo must FAIL the fixture gate: every analyzer is silent.
	if code := run([]string{"-root", "../..", "-expect-all"}, &out, &errb); code != 1 {
		t.Errorf("-expect-all on clean repo: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "gone silent") {
		t.Errorf("missing silent-analyzer report, stderr %q", errb.String())
	}
}

func TestPlainRunExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", "../.."}, &out, &errb); code != 0 {
		t.Errorf("clean repo: exit %d, findings:\n%s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-root", fixtureRoot}, &out, &errb)
	if code != 1 {
		t.Errorf("fixture tree: exit %d, want 1", code)
	}
	// Diagnostics carry the file:line:col: [analyzer] shape.
	if !strings.Contains(out.String(), "bad.go:") || !strings.Contains(out.String(), "[lockdiscipline]") {
		t.Errorf("fixture findings missing file:line/analyzer tags:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name()) {
			t.Errorf("-list output missing %s", a.Name())
		}
	}
}
