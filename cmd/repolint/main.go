// Command repolint runs the project-invariant static analysis suite
// (internal/analysis) over the module and exits non-zero on any
// finding. It is the machine check for the conventions the codebase
// runs on: metadata-lock discipline, interface-only layering, injected
// clocks, wire-path error handling, and allocation-free kernels.
//
// Usage:
//
//	repolint [-root dir] [-expect-all] [-list]
//
// -root selects the module root to analyze (default "."). -list
// prints the analyzers and exits. -expect-all inverts the gate for
// fixture trees: the run succeeds only if EVERY analyzer produced at
// least one finding — CI runs it against the deliberately broken tree
// under internal/analysis/testdata/fixture, so an analyzer that
// silently stops matching after a refactor fails the build.
//
// Findings print as file:line:col: [analyzer] message. A finding is
// suppressed in place with
//
//	//repolint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory, and
// stale suppressions (matching nothing) are themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root to analyze")
	expectAll := fs.Bool("expect-all", false, "fixture mode: succeed only if every analyzer fired at least once")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	diags, err := Run(*root, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}

	if *expectAll {
		fired := map[string]int{}
		for _, d := range diags {
			fired[d.Analyzer]++
		}
		silent := 0
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %d finding(s)\n", a.Name(), fired[a.Name()])
			if fired[a.Name()] == 0 {
				fmt.Fprintf(stderr, "repolint: analyzer %s matched NOTHING in the fixture tree — it has gone silent\n", a.Name())
				silent++
			}
		}
		if silent > 0 {
			return 1
		}
		return 0
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// Run loads the module at root, runs every analyzer, applies
// //repolint:ignore suppressions, and returns the surviving
// diagnostics sorted by position. Exported for the fixture self-test.
func Run(root string, analyzers []analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			diags = append(diags, a.Check(pkg)...)
		}
		sups, probs := analysis.CollectSuppressions(pkg, analyzers)
		diags = analysis.ApplySuppressions(diags, sups)
		diags = append(diags, probs...)
		diags = append(diags, analysis.StaleSuppressions(sups)...)
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
