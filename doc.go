// Package repro is the public API of a full reproduction of
// "A Solution to the Network Challenges of Data Recovery in
// Erasure-coded Distributed Storage Systems: A Study on the Facebook
// Warehouse Cluster" (Rashmi et al., HotStorage 2013).
//
// The package exposes three layers:
//
//   - Codecs: NewRS (the production baseline), NewPiggybackedRS (the
//     paper's contribution — same storage, same fault tolerance, ~30%
//     cheaper single-block recovery) and NewLRC (the §5 related-work
//     baseline). All satisfy the Codec interface, including repair
//     planning (which byte ranges a recovery reads) and repair
//     execution over a caller-supplied fetch function.
//
//   - The measurement study: GenerateTrace builds a failure trace
//     calibrated to the paper's published statistics, RunStudy costs it
//     under a codec (Fig. 3a, Fig. 3b), CompareCodecs reproduces the
//     §3.2 projection ("close to fifty terabytes per day"), and
//     MissingBlockDistribution reproduces the §2.2 single-failure
//     dominance (98.08% / 1.87% / 0.05%).
//
//   - Substrates: NewMiniHDFS builds an in-process HDFS + HDFS-RAID
//     model with rack-aware placement, a RaidNode, a BlockFixer, and
//     degraded reads, all charging cross-rack traffic to a switch-level
//     network model; MTTDLYears implements the §3.2 reliability
//     analysis.
//
// The API surface is organised into one file per layer: codecs.go
// (codecs and shard helpers), engine.go (the concurrent execution
// engine and partial-sum fold trees), study.go (the measurement study,
// contention model, reliability, layout, and regenerating-code
// bounds), substrate.go (the MiniHDFS cluster substrate and the
// sharded metadata plane), serve_api.go (the networked serving layer
// and its benchmarks), and controlplane.go (the autonomous repair
// control plane).
//
// # Execution engine
//
// All codec execution — encode, reconstruct, repair — runs on fused,
// cache-chunked GF(2^8) kernels (gf256.MulAddSlices), and batches of
// stripe jobs run concurrently on the stripe-repair engine: NewEngine
// builds a bounded worker pool (the parallelism knob, surfaced as
// -parallelism on cmd/repaircost) with per-worker scratch-buffer reuse;
// RunRepairs and RunEncodes execute batches with output byte-identical
// to serial execution. The BlockFixer of NewMiniHDFS routes its stripe
// repairs through the same engine (Config.RepairParallelism).
// cmd/repaircost -engine measures batch repair throughput across
// parallelism levels and emits machine-readable BENCH_engine.json for
// trend tracking; see README.md for how to run and interpret it.
//
// # Contention model
//
// The analytic study costs each repair in isolation; the contention
// layer costs them against each other. RunContentionStudy replays a
// trace through an event-driven fluid-flow fabric (FabricTopology: NIC,
// TOR, and aggregation-switch capacities; max-min fair sharing with
// priority classes) behind a repair scheduler (PolicyFIFO,
// PolicySmallestFirst, PolicyPriorityLanes) while closed-loop
// foreground map-reduce load keeps the core saturated, yielding p50/p99
// repair latency and degraded-read slowdown per codec.
// cmd/repaircost -contention writes the RS versus Piggybacked-RS
// head-to-head to BENCH_contention.json, and a MiniHDFS configured with
// HDFSConfig.Fabric timestamps its BlockFixer passes through the same
// model.
//
// # Serving layer
//
// The contention model simulates load; the serving layer serves it.
// StartServeSystem brings the MiniHDFS up as a real networked service
// on localhost TCP — a namenode daemon for metadata/placement/fixer
// control and one datanode daemon per machine for replica range reads,
// speaking a small framed RPC protocol — and DialServe returns a
// client whose read path transparently falls back to degraded reads:
// when a block's holder is gone (or dies mid-transfer), the client
// fetches the stripe layout, downloads the codec's repair-plan ranges
// from the surviving datanodes, and reconstructs the block locally.
// RunServeLoad / RunServeBench drive a closed-loop load generator
// (configurable clients, read/write mix, mid-run datanode kill)
// against the live cluster, reporting client-visible throughput,
// p50/p99 latency, and the degraded-read share per codec;
// cmd/loadgen and cmd/repaircost -serve write the results to
// BENCH_serve.json.
//
// # Partial-sum repair
//
// Conventional repair concentrates the whole recovery download on the
// reconstructing node's NIC — the paper's bottleneck. Because every
// codec here is linear over GF(2^8), each repair is expressible as a
// LinearPlan (helper range × coefficient → target offset), and the
// arithmetic can migrate into the helpers: PlanAggregationTree builds
// a rack-aware fold tree (intra-rack helpers fold at one local
// aggregator before crossing the TOR; rack aggregators fold pairwise),
// each helper multiply-accumulates its ranges, XORs in its children's
// partial sums, and forwards ONE block-sized buffer. The serving layer
// implements this as a dn.partial RPC (DialServe with
// WithPartialSumRepair), the BlockFixer behind
// HDFSConfig.PartialSumRepair, and the contention model behind
// ContentionConfig.PartialSums; RunServePartialSumBench and
// cmd/loadgen -partialbench write the conventional-versus-partial
// comparison to BENCH_partialsum.json, and cmd/repaircost -contention
// reports the corresponding p99 repair-latency relief.
//
// # Sharded metadata plane
//
// A single MiniHDFS serialises every metadata operation behind one
// lock — fine for the paper's repair studies, a bottleneck for
// many-files serving workloads. OpenMiniHDFS with WithShards(n > 1)
// partitions the file→stripe metadata into n independent shards behind
// the Metadata interface: files route to shards by a seeded consistent
// hash of their parent directory (stable across restarts, and keeping
// each directory subtree shard-local), block and stripe IDs are minted
// strided so id→shard routing is arithmetic, and each shard owns its
// own lock, rng, block-fixer pass, and scrubber cursor while all
// shards share one physical plane (datanodes plus the switch-level
// network). Cross-shard operations — FixStripes, ReReplicateBlocks,
// MachineInventory, machine death — fan out and merge; merged fixer
// reports measure cross-rack traffic once around the whole fan-out so
// the shared fabric is never double-counted. Serving and the repair
// control plane consume only the Metadata / MetadataView / RepairOps /
// AdminOps interfaces, so every layer runs unchanged against either a
// single Cluster or a ShardedCluster. RunShardBench drives a
// many-files Zipf metadata workload across shard counts, and
// cmd/loadgen -shardbench writes metadata ops/sec and lock-wait per op
// to BENCH_shards.json.
package repro
